// Tests for the wattdb::Db facade: construction per registered scheme,
// the unknown-scheme error path, registry extensibility, the RAII
// Session/TxnHandle commit/abort semantics, and reads landing mid-migration
// that succeed via the §4.3 two-pointer retry.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/db.h"
#include "api/scheme_registry.h"
#include "workload/tpcc_schema.h"

namespace wattdb {
namespace {

DbOptions SmallOptions() {
  return DbOptions()
      .WithNodes(4)
      .WithActiveNodes(2)
      .WithBufferPages(2000)
      .WithWarehouses(2)
      .WithFill(0.05)
      .WithHomeNodes({NodeId(0), NodeId(1)});
}

TEST(SchemeRegistry, BuiltinsAreRegistered) {
  auto& reg = SchemeRegistry::Global();
  EXPECT_TRUE(reg.Contains("physical"));
  EXPECT_TRUE(reg.Contains("logical"));
  EXPECT_TRUE(reg.Contains("physiological"));
  EXPECT_FALSE(reg.Contains("hyper-graph"));
  EXPECT_GE(reg.Names().size(), 3u);
}

TEST(SchemeRegistry, RejectsDuplicatesAndNulls) {
  auto& reg = SchemeRegistry::Global();
  EXPECT_TRUE(reg.Register("physiological", nullptr).IsInvalidArgument());
  const Status dup = reg.Register(
      "physiological",
      [](cluster::Cluster* c, const partition::MigrationConfig& mc)
          -> std::unique_ptr<cluster::Repartitioner> {
        (void)c;
        (void)mc;
        return nullptr;
      });
  EXPECT_TRUE(dup.IsAlreadyExists());
}

TEST(Db, OpensWithEachBuiltinScheme) {
  for (const std::string name : {"physical", "logical", "physiological"}) {
    auto db = Db::Open(SmallOptions().WithScheme(name));
    ASSERT_TRUE(db.ok()) << name << ": " << db.status().ToString();
    EXPECT_EQ((*db)->scheme().name(), name);
    EXPECT_GT((*db)->tpcc()->rows_loaded(), 1000);
    EXPECT_TRUE((*db)->cluster().catalog().CheckInvariants());
  }
}

TEST(Db, UnknownSchemeFailsWithRegisteredNames) {
  auto db = Db::Open(SmallOptions().WithScheme("hash-ring"));
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsNotFound());
  // The error teaches the caller what would have worked.
  EXPECT_NE(db.status().message().find("hash-ring"), std::string::npos);
  EXPECT_NE(db.status().message().find("physiological"), std::string::npos);
}

/// A scheme added from *outside* src/api, exactly as downstream code would:
/// subclass the abstract Repartitioner and register a factory.
class NoopScheme : public cluster::Repartitioner {
 public:
  std::string name() const override { return "noop"; }
  const cluster::RebalanceStats& stats() const override { return stats_; }
  Status StartRebalance(const std::vector<NodeId>& targets, double fraction,
                        std::function<void()> done) override {
    (void)targets;
    (void)fraction;
    ++starts_;
    if (done) done();
    return Status::OK();
  }
  Status Drain(NodeId victim, std::function<void()> done) override {
    (void)victim;
    if (done) done();
    return Status::OK();
  }
  bool InProgress() const override { return false; }

  int starts_ = 0;

 private:
  cluster::RebalanceStats stats_;
};

TEST(Db, CustomSchemeViaRegistry) {
  static NoopScheme* last_created = nullptr;
  const Status reg = SchemeRegistry::Global().Register(
      "noop", [](cluster::Cluster* c, const partition::MigrationConfig& mc)
                  -> std::unique_ptr<cluster::Repartitioner> {
        (void)c;
        (void)mc;
        auto scheme = std::make_unique<NoopScheme>();
        last_created = scheme.get();
        return scheme;
      });
  // A second test-process-wide registration attempt is AlreadyExists; the
  // first must succeed.
  ASSERT_TRUE(reg.ok() || reg.IsAlreadyExists());

  auto db = Db::Open(SmallOptions().WithScheme("noop"));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->scheme().name(), "noop");
  ASSERT_NE(last_created, nullptr);
  bool done = false;
  EXPECT_TRUE(
      (*db)->TriggerRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(last_created->starts_, 1);
}

TEST(Session, CommitMakesWritesVisible) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const Key key = workload::TpccKeys::Customer(1, 1, 1);

  StatusOr<storage::Record> before = session.Get(customer, key);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  std::vector<uint8_t> payload = before->payload;
  workload::PutF64(&payload, workload::CustomerFields::kBalance, 4242.5);
  {
    TxnHandle txn = session.Begin();
    ASSERT_TRUE(txn.active());
    ASSERT_TRUE(txn.Update(customer, key, payload).ok());
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_FALSE(txn.active());
    // Double-commit is an error, not a crash.
    EXPECT_TRUE(txn.Commit().IsInvalidArgument());
  }

  StatusOr<storage::Record> after = session.Get(customer, key);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(
      workload::GetF64(after->payload, workload::CustomerFields::kBalance),
      4242.5);
}

TEST(Session, AbortAndRaiiRollBack) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const Key key = workload::TpccKeys::Customer(1, 1, 2);

  const double original = workload::GetF64(
      session.Get(customer, key)->payload, workload::CustomerFields::kBalance);

  std::vector<uint8_t> payload = session.Get(customer, key)->payload;
  workload::PutF64(&payload, workload::CustomerFields::kBalance, -1.0);

  {  // Explicit abort.
    TxnHandle txn = session.Begin();
    ASSERT_TRUE(txn.Update(customer, key, payload).ok());
    txn.Abort();
    EXPECT_FALSE(txn.active());
  }
  {  // Dropped without commit: the destructor must abort.
    TxnHandle txn = session.Begin();
    ASSERT_TRUE(txn.Update(customer, key, payload).ok());
  }
  EXPECT_DOUBLE_EQ(
      workload::GetF64(session.Get(customer, key)->payload,
                       workload::CustomerFields::kBalance),
      original);
}

TEST(Session, InsertScanDelete) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  // A key above every loaded customer of (w=1, d=1): fill=0.05 materializes
  // far fewer than 3000 customers per district.
  const Key fresh = workload::TpccKeys::Customer(1, 1, 2999);

  EXPECT_TRUE(session.Get(customer, fresh).status().IsNotFound());

  TxnHandle txn = session.Begin();
  const std::vector<uint8_t> payload(64, 0xAB);
  ASSERT_TRUE(txn.Insert(customer, fresh, payload).ok());
  EXPECT_TRUE(txn.Insert(customer, fresh, payload).IsAlreadyExists());
  ASSERT_TRUE(txn.Commit().ok());

  StatusOr<storage::Record> rec = session.Get(customer, fresh);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->payload, payload);

  // The inserted key is visible to a range scan.
  bool seen = false;
  const StatusOr<int64_t> visited = session.Scan(
      customer, KeyRange{fresh, fresh + 1}, [&](const storage::Record& r) {
        seen = r.key == fresh;
        return true;
      });
  ASSERT_TRUE(visited.ok());
  EXPECT_EQ(*visited, 1);
  EXPECT_TRUE(seen);

  TxnHandle del = session.Begin();
  ASSERT_TRUE(del.Delete(customer, fresh).ok());
  ASSERT_TRUE(del.Commit().ok());
  EXPECT_TRUE(session.Get(customer, fresh).status().IsNotFound());
}

TEST(Session, ScanEarlyStopHaltsAcrossRoutes) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  // CUSTOMER spans two routes (warehouse 1 on node 0, warehouse 2 on
  // node 1); a callback stopping after the first record must halt the
  // whole scan, not just the first route.
  ASSERT_GE(db.Routes(customer).size(), 2u);
  const StatusOr<int64_t> visited =
      session.Scan(customer, KeyRange{kMinKey, kMaxKey},
                   [](const storage::Record&) { return false; });
  ASSERT_TRUE(visited.ok());
  EXPECT_EQ(*visited, 1);
}

TEST(Session, GetSucceedsMidMigrationViaTwoPointerRetry) {
  // Logical moves delete records at the source and re-insert them at the
  // target batch by batch — the window where only the two-pointer retry
  // finds a moving record (§4.3).
  auto opened = Db::Open(SmallOptions()
                             .WithScheme("logical")
                             .WithLogicalBatchRecords(64)
                             .WithMigrateOnly(workload::TpccTable::kCustomer));
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const int64_t per_district = db.tpcc()->customers_per_district();

  bool done = false;
  ASSERT_TRUE(
      db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, [&]() { done = true; })
          .ok());

  // Probe every customer of warehouse 1 / district 1 repeatedly while the
  // move is in flight. Every read must succeed: primary, forwarded, or
  // secondary location.
  int64_t reads = 0;
  const SimTime t0 = db.Now();
  while (!done && db.Now() < t0 + 600 * kUsPerSec) {
    db.RunFor(kUsPerSec / 2);
    for (int64_t c = 1; c <= per_district; ++c) {
      const Key key = workload::TpccKeys::Customer(1, 1, c);
      const StatusOr<storage::Record> rec = session.Get(customer, key);
      ASSERT_TRUE(rec.ok()) << "customer " << c << " unreadable mid-move: "
                            << rec.status().ToString();
      ++reads;
    }
  }
  EXPECT_TRUE(done) << "migration did not finish";
  EXPECT_GT(db.scheme().stats().records_moved, 0);
  EXPECT_GT(reads, 0);
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());

  // After the move the same keys still resolve (ownership transferred).
  for (int64_t c = 1; c <= per_district; ++c) {
    EXPECT_TRUE(
        session.Get(customer, workload::TpccKeys::Customer(1, 1, c)).ok());
  }
}

TEST(Db, RebalanceAndWaitReportsDuration) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  const StatusOr<SimTime> elapsed =
      db.RebalanceAndWait({NodeId(2), NodeId(3)}, 0.5, 600 * kUsPerSec);
  ASSERT_TRUE(elapsed.ok()) << elapsed.status().ToString();
  EXPECT_GT(*elapsed, 0);
  EXPECT_GT(db.scheme().stats().segments_moved, 0);
  EXPECT_FALSE(db.cluster().catalog().PartitionsOwnedBy(NodeId(2)).empty());
}

TEST(Db, RebalanceRejectsBadArgumentsSynchronously) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  // An out-of-range target is a clean error, not a crash.
  EXPECT_TRUE(db.TriggerRebalance({NodeId(99)}, 0.5).IsNotFound());
  // A bad fraction surfaces the validation error immediately instead of a
  // TimedOut after max_wait of simulation — even when the target is in
  // standby and would otherwise boot before the scheme ever checked it.
  const StatusOr<SimTime> r = db.RebalanceAndWait({NodeId(2)}, 1.5);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  EXPECT_TRUE(db.AttachHelpers({NodeId(42)}, {NodeId(0)}, 100).IsNotFound());
}

TEST(Db, RoutesExposeOwnership) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  const auto routes = db.Routes(db.table(workload::TpccTable::kCustomer));
  ASSERT_FALSE(routes.empty());
  for (const TableRoute& r : routes) {
    EXPECT_TRUE(r.partition.valid());
    EXPECT_TRUE(r.owner.valid());
    EXPECT_GT(r.segments, 0u);
  }
}

}  // namespace
}  // namespace wattdb
