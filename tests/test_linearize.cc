// Unit tests for the per-key register linearizability checker
// (src/chaos/linearize.cc) on hand-built histories: known-linearizable
// shapes must pass, known-broken shapes must fail with the right named
// anomaly and a minimal failing sub-history, and the indeterminate /
// replica-read relaxations must neither over- nor under-report.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/history.h"

namespace wattdb::chaos {
namespace {

HistoryOp Op(OpKind kind, Key key, uint64_t seq, SimTime inv, SimTime resp,
             OpOutcome outcome = OpOutcome::kOk, int client = 0) {
  HistoryOp op;
  op.kind = kind;
  op.key = key;
  op.seq = seq;
  op.invoked_at = inv;
  op.responded_at = resp;
  op.outcome = outcome;
  op.client = client;
  return op;
}

TEST(Linearize, EmptyHistoryPasses) {
  HistoryRecorder rec;
  const HistoryCheckResult r = CheckHistory(rec);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.keys_checked, 0);
}

TEST(Linearize, SequentialRegisterPasses) {
  HistoryRecorder rec;
  rec.RecordInitial(7, 1);
  rec.Record(Op(OpKind::kRead, 7, 1, 10, 20));
  rec.Record(Op(OpKind::kWrite, 7, 2, 30, 40));
  rec.Record(Op(OpKind::kRead, 7, 2, 50, 60));
  rec.Record(Op(OpKind::kWrite, 7, 3, 70, 80));
  rec.Record(Op(OpKind::kRead, 7, 3, 90, 100));
  const HistoryCheckResult r = CheckHistory(rec);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front().anomaly;
  EXPECT_EQ(r.keys_checked, 1);
  EXPECT_EQ(r.keys_over_budget, 0);
}

TEST(Linearize, ConcurrentOverlapMayOrderEitherWay) {
  // Two overlapping writes and a read that observed the one invoked
  // second: legal — the linearization point of the second write may fall
  // before the read.
  HistoryRecorder rec;
  rec.Record(Op(OpKind::kWrite, 1, 10, 0, 100, OpOutcome::kOk, 1));
  rec.Record(Op(OpKind::kWrite, 1, 11, 50, 150, OpOutcome::kOk, 2));
  rec.Record(Op(OpKind::kRead, 1, 11, 60, 90, OpOutcome::kOk, 3));
  EXPECT_TRUE(CheckHistory(rec).violations.empty());
}

TEST(Linearize, StaleReadIsCaught) {
  // seq 2 committed strictly before the read began, yet the read observed
  // the older seq 1 — a stale read, no legal linearization order exists.
  HistoryRecorder rec;
  rec.RecordInitial(3, 1);
  rec.Record(Op(OpKind::kWrite, 3, 2, 10, 20));
  rec.Record(Op(OpKind::kRead, 3, 1, 30, 40));
  const HistoryCheckResult r = CheckHistory(rec);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_NE(r.violations[0].anomaly.find("stale read"), std::string::npos)
      << r.violations[0].anomaly;
  EXPECT_EQ(r.violations[0].key, 3u);
}

TEST(Linearize, LostReadIsCaught) {
  // The key was loaded and then written, yet a later read observed it
  // absent (seq 0) — a lost read.
  HistoryRecorder rec;
  rec.RecordInitial(5, 1);
  rec.Record(Op(OpKind::kWrite, 5, 2, 10, 20));
  rec.Record(Op(OpKind::kRead, 5, 0, 30, 40));
  const HistoryCheckResult r = CheckHistory(rec);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_NE(r.violations[0].anomaly.find("lost read"), std::string::npos)
      << r.violations[0].anomaly;
}

TEST(Linearize, NeverWrittenValueIsCaught) {
  HistoryRecorder rec;
  rec.RecordInitial(9, 1);
  rec.Record(Op(OpKind::kRead, 9, 42, 10, 20));
  const HistoryCheckResult r = CheckHistory(rec);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_NE(r.violations[0].anomaly.find("no recorded write"),
            std::string::npos)
      << r.violations[0].anomaly;
}

TEST(Linearize, FailedWriteMustNotBeObserved) {
  // A kFailed write was deliberately rolled back; observing its value is
  // a refused-write resurfacing.
  HistoryRecorder rec;
  rec.RecordInitial(2, 1);
  rec.Record(Op(OpKind::kWrite, 2, 7, 10, 20, OpOutcome::kFailed));
  rec.Record(Op(OpKind::kRead, 2, 7, 30, 40));
  const HistoryCheckResult r = CheckHistory(rec);
  ASSERT_EQ(r.violations.size(), 1u);
}

TEST(Linearize, IndeterminateWriteMayLandOrNot) {
  // Either reading the indeterminate value or never seeing it is legal.
  for (const uint64_t observed : {uint64_t{1}, uint64_t{5}}) {
    HistoryRecorder rec;
    rec.RecordInitial(4, 1);
    rec.Record(Op(OpKind::kWrite, 4, 5, 10, 20, OpOutcome::kIndeterminate));
    rec.Record(Op(OpKind::kRead, 4, observed, 30, 40));
    EXPECT_TRUE(CheckHistory(rec).violations.empty())
        << "observed=" << observed << ": "
        << CheckHistory(rec).violations.front().anomaly;
  }
}

TEST(Linearize, IndeterminateWriteTakesEffectWithoutResponseOrdering) {
  // An indeterminate write whose effect surfaced long after the client
  // gave up: its response is lifted to infinity, so a much later read of
  // its value is still legal...
  HistoryRecorder rec;
  rec.RecordInitial(6, 1);
  rec.Record(Op(OpKind::kWrite, 6, 2, 10, 20, OpOutcome::kIndeterminate));
  rec.Record(Op(OpKind::kRead, 6, 1, 30, 40));
  rec.Record(Op(OpKind::kRead, 6, 2, 50, 60));
  EXPECT_TRUE(CheckHistory(rec).violations.empty());
  // ...but flipping BACK to the old value after the new one was observed
  // is not: no register order serves 1, then 2, then 1 again.
  rec.Record(Op(OpKind::kRead, 6, 1, 70, 80));
  EXPECT_FALSE(CheckHistory(rec).violations.empty());
}

TEST(Linearize, ReplicaReadMayBeBoundedStale) {
  // A replica read lagging behind a committed write is within the bounded-
  // staleness contract — the relaxed check must not flag it.
  HistoryRecorder rec;
  rec.RecordInitial(8, 1);
  rec.Record(Op(OpKind::kWrite, 8, 2, 10, 20));
  HistoryOp stale = Op(OpKind::kRead, 8, 1, 30, 40);
  stale.from_replica = true;
  rec.Record(stale);
  EXPECT_TRUE(CheckHistory(rec).violations.empty());
}

TEST(Linearize, ReplicaReadOfAbsentLoadedKeyIsCaught) {
  // Staleness never explains absence of a key that predates the window
  // and was never deleted: the replica simply never had it (the wrong-
  // NotFound shape the routing fix closed).
  HistoryRecorder rec;
  rec.RecordInitial(8, 1);
  HistoryOp absent = Op(OpKind::kRead, 8, 0, 30, 40);
  absent.from_replica = true;
  rec.Record(absent);
  const HistoryCheckResult r = CheckHistory(rec);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_NE(r.violations[0].anomaly.find("replica"), std::string::npos);
}

TEST(Linearize, TxnMarkersAreSkipped) {
  HistoryRecorder rec;
  rec.Record(Op(OpKind::kTxn, 0, 0, 10, 20));
  const HistoryCheckResult r = CheckHistory(rec);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.keys_checked, 0);
}

TEST(Linearize, MinimalSubHistoryEndsAtTheOffendingRead) {
  // A long healthy tail after the violation must be truncated away: the
  // sub-history ends at the earliest cut that already fails, i.e. the
  // offending read's response, not the full key history.
  HistoryRecorder rec;
  rec.RecordInitial(1, 1);
  rec.Record(Op(OpKind::kWrite, 1, 2, 10, 20));
  rec.Record(Op(OpKind::kRead, 1, 1, 30, 40));  // Stale: the violation.
  for (int i = 0; i < 50; ++i) {
    rec.Record(Op(OpKind::kWrite, 1, 3 + i, 100 + 20 * i, 110 + 20 * i));
    rec.Record(Op(OpKind::kRead, 1, 3 + i, 112 + 20 * i, 118 + 20 * i));
  }
  const HistoryCheckResult r = CheckHistory(rec);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_LE(r.violations[0].sub_history.size(), 3u)
      << "sub-history kept the healthy tail";
  SimTime max_resp = 0;
  for (const HistoryOp& op : r.violations[0].sub_history) {
    if (op.responded_at > max_resp && op.outcome == OpOutcome::kOk) {
      max_resp = op.responded_at;
    }
  }
  EXPECT_LE(max_resp, SimTime{40});
}

TEST(Linearize, PerKeyIsolationReportsEveryBrokenKey) {
  HistoryRecorder rec;
  for (Key k = 0; k < 4; ++k) {
    rec.RecordInitial(k, 1);
    rec.Record(Op(OpKind::kWrite, k, 2, 10, 20));
    // Keys 1 and 3 get a stale read; 0 and 2 stay healthy.
    rec.Record(Op(OpKind::kRead, k, (k % 2 == 1) ? 1 : 2, 30, 40));
  }
  const HistoryCheckResult r = CheckHistory(rec);
  EXPECT_EQ(r.keys_checked, 4);
  ASSERT_EQ(r.violations.size(), 2u);
  EXPECT_EQ(r.violations[0].key, 1u);
  EXPECT_EQ(r.violations[1].key, 3u);
}

}  // namespace
}  // namespace wattdb::chaos
