// End-to-end smoke test: stand up a cluster, load a tiny TPC-C database,
// run the workload, rebalance with each scheme, and check nothing breaks.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "partition/logical.h"
#include "partition/physical.h"
#include "partition/physiological.h"
#include "workload/client.h"
#include "workload/tpcc_loader.h"
#include "workload/tpcc_txn.h"

namespace wattdb {
namespace {

cluster::ClusterConfig SmallConfig() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.initially_active = 2;
  cfg.buffer.capacity_pages = 2000;
  return cfg;
}

workload::TpccLoadConfig SmallLoad() {
  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.05;  // ~5% of full cardinalities: fast unit test.
  load.home_nodes = {NodeId(0), NodeId(1)};
  return load;
}

TEST(Smoke, LoadAndRunWorkload) {
  cluster::Cluster c(SmallConfig());
  workload::TpccDatabase db(&c, SmallLoad());
  ASSERT_TRUE(db.Load().ok());
  EXPECT_GT(db.rows_loaded(), 1000);
  EXPECT_TRUE(c.catalog().CheckInvariants());

  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = 10;
  pool_cfg.think_time = 50 * kUsPerMs;
  workload::ClientPool pool(&db, pool_cfg);
  pool.Start();
  c.RunUntil(20 * kUsPerSec);
  pool.Stop();
  EXPECT_GT(pool.completed(), 100) << "workload should make progress";
}

TEST(Smoke, PhysiologicalRebalance) {
  cluster::Cluster c(SmallConfig());
  workload::TpccDatabase db(&c, SmallLoad());
  ASSERT_TRUE(db.Load().ok());

  partition::PhysiologicalPartitioning scheme(&c);
  cluster::Master master(&c, &scheme);

  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = 8;
  workload::ClientPool pool(&db, pool_cfg);
  pool.Start();
  c.RunUntil(5 * kUsPerSec);

  bool finished = false;
  ASSERT_TRUE(master
                  .TriggerRebalance({NodeId(2), NodeId(3)}, 0.5,
                                    [&]() { finished = true; })
                  .ok());
  c.RunUntil(300 * kUsPerSec);
  pool.Stop();
  EXPECT_TRUE(finished);
  EXPECT_GT(scheme.stats().segments_moved, 0);
  EXPECT_TRUE(c.catalog().CheckInvariants());
  // Targets actually own data now.
  EXPECT_FALSE(c.catalog().PartitionsOwnedBy(NodeId(2)).empty());

  // Workload still correct afterwards: run more queries.
  pool.ResetStats();
  pool.Start();
  c.RunUntil(c.Now() + 10 * kUsPerSec);
  pool.Stop();
  EXPECT_GT(pool.completed(), 50);
}

TEST(Smoke, PhysicalAndLogicalRebalance) {
  for (int which = 0; which < 2; ++which) {
    cluster::Cluster c(SmallConfig());
    workload::TpccDatabase db(&c, SmallLoad());
    ASSERT_TRUE(db.Load().ok());
    std::unique_ptr<partition::MigrationManagerBase> scheme;
    if (which == 0) {
      scheme = std::make_unique<partition::PhysicalPartitioning>(&c);
    } else {
      partition::MigrationConfig mc;
      mc.logical_batch_records = 512;
      scheme = std::make_unique<partition::LogicalPartitioning>(&c, mc);
    }
    cluster::Master master(&c, scheme.get());
    bool finished = false;
    ASSERT_TRUE(master
                    .TriggerRebalance({NodeId(2), NodeId(3)}, 0.5,
                                      [&]() { finished = true; })
                    .ok());
    c.RunUntil(3000 * kUsPerSec);
    EXPECT_TRUE(finished) << "scheme " << scheme->name();
    EXPECT_TRUE(c.catalog().CheckInvariants());
    if (which == 0) {
      // Physical: ownership unchanged, bytes moved.
      EXPECT_TRUE(c.catalog().PartitionsOwnedBy(NodeId(2)).empty());
      EXPECT_FALSE(c.segments().SegmentsOn(NodeId(2)).empty());
    } else {
      EXPECT_GT(scheme->stats().records_moved, 0);
      EXPECT_FALSE(c.catalog().PartitionsOwnedBy(NodeId(2)).empty());
    }
  }
}

}  // namespace
}  // namespace wattdb
