// Migration-protocol correctness tests (§4.3): the two-pointer redirection,
// drain semantics, snapshot correctness for transactions that start before,
// during, and after a move, and the semantic differences between the three
// schemes.

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "partition/logical.h"
#include "partition/physical.h"
#include "partition/physiological.h"

namespace wattdb::partition {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : cluster_(MakeConfig()) {
    table_ = cluster_.catalog().CreateTable(
        {TableId(), "t", {{"v", catalog::ColumnType::kString, 64}}});
    part_ = cluster_.catalog().CreatePartition(table_, NodeId(0));
    WATTDB_CHECK(
        cluster_.catalog().AssignRange(table_, {0, 10000}, part_->id()).ok());
    // Two segments so half can move.
    auto s1 = cluster_.master()->AllocateSegment(0, part_, {0, 5000});
    auto s2 = cluster_.master()->AllocateSegment(0, part_, {5000, 10000});
    WATTDB_CHECK(s1.ok() && s2.ok());
    tx::Txn* w = cluster_.BeginTxn();
    for (Key k = 0; k < 200; ++k) {
      WATTDB_CHECK(cluster_.master()
                       ->Insert(w, part_, k * 50,
                                std::vector<uint8_t>(3200,
                                                     static_cast<uint8_t>(k)))
                       .ok());
    }
    cluster_.CommitTxn(cluster_.master(), w);
    cluster_.tm().Release(w->id);
  }

  static cluster::ClusterConfig MakeConfig() {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 3;
    cfg.initially_active = 3;
    return cfg;
  }

  Status ReadKey(Key k, uint8_t* out) {
    tx::Txn* r = cluster_.BeginTxn(true);
    catalog::Partition* part = cluster_.Route(r, table_, k);
    if (part == nullptr) return Status::NotFound("no route");
    storage::Record rec;
    Status s = cluster_.node(part->owner())->Read(r, part, k, &rec);
    if (s.IsNotFound()) {
      auto [first, second] = cluster_.RouteBoth(r, table_, k);
      if (second != nullptr) {
        s = cluster_.node(second->owner())->Read(r, second, k, &rec);
      }
    }
    if (s.ok() && out != nullptr) *out = rec.payload[0];
    cluster_.tm().Commit(r);
    cluster_.tm().Release(r->id);
    return s;
  }

  cluster::Cluster cluster_;
  TableId table_;
  catalog::Partition* part_;
};

TEST_F(MigrationTest, PhysiologicalMovesOwnershipAndData) {
  PhysiologicalPartitioning scheme(&cluster_);
  bool done = false;
  ASSERT_TRUE(
      scheme.StartRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok());
  cluster_.RunUntil(cluster_.Now() + 120 * kUsPerSec);
  ASSERT_TRUE(done);
  EXPECT_EQ(scheme.stats().segments_moved, 1);
  // Node 1 now owns a partition with the moved segment; its bytes moved too.
  auto owned = cluster_.catalog().PartitionsOwnedBy(NodeId(1));
  ASSERT_EQ(owned.size(), 1u);
  EXPECT_EQ(owned[0]->segment_count(), 1u);
  EXPECT_FALSE(cluster_.segments().SegmentsOn(NodeId(1)).empty());
  EXPECT_TRUE(cluster_.catalog().CheckInvariants());
  // Every key is still readable with the right value.
  for (Key k = 0; k < 200; ++k) {
    uint8_t v = 0;
    ASSERT_TRUE(ReadKey(k * 50, &v).ok()) << k;
    EXPECT_EQ(v, static_cast<uint8_t>(k));
  }
}

TEST_F(MigrationTest, PhysicalMovesBytesOnly) {
  PhysicalPartitioning scheme(&cluster_);
  bool done = false;
  ASSERT_TRUE(
      scheme.StartRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok());
  cluster_.RunUntil(cluster_.Now() + 120 * kUsPerSec);
  ASSERT_TRUE(done);
  // Ownership unchanged; bytes relocated.
  EXPECT_TRUE(cluster_.catalog().PartitionsOwnedBy(NodeId(1)).empty());
  EXPECT_FALSE(cluster_.segments().SegmentsOn(NodeId(1)).empty());
  EXPECT_EQ(part_->segment_count(), 2u);
  // Reads now pay remote fetches but still succeed.
  tx::Txn* r = cluster_.BeginTxn(true);
  storage::Record rec;
  Key moved_key = 0;
  for (storage::Segment* seg : cluster_.segments().SegmentsOn(NodeId(1))) {
    moved_key = seg->MinKey();
  }
  ASSERT_TRUE(cluster_.master()->Read(r, part_, moved_key, &rec).ok());
  EXPECT_GT(r->net_us, 0) << "physical: owner fetches pages remotely";
  cluster_.tm().Commit(r);
  cluster_.tm().Release(r->id);
}

TEST_F(MigrationTest, LogicalMovesRecordsTransactionally) {
  MigrationConfig mc;
  mc.logical_batch_records = 64;
  LogicalPartitioning scheme(&cluster_, mc);
  bool done = false;
  ASSERT_TRUE(
      scheme.StartRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok());
  cluster_.RunUntil(cluster_.Now() + 300 * kUsPerSec);
  ASSERT_TRUE(done);
  EXPECT_GT(scheme.stats().records_moved, 50);
  auto owned = cluster_.catalog().PartitionsOwnedBy(NodeId(1));
  ASSERT_EQ(owned.size(), 1u);
  // All 200 records readable, values intact.
  for (Key k = 0; k < 200; ++k) {
    uint8_t v = 0;
    ASSERT_TRUE(ReadKey(k * 50, &v).ok()) << k;
    EXPECT_EQ(v, static_cast<uint8_t>(k));
  }
  EXPECT_TRUE(cluster_.catalog().CheckInvariants());
}

TEST_F(MigrationTest, SnapshotBeforeMoveStillReadsDuringAndAfter) {
  // §4.3 Correctness case 1: transactions started prior to rebalancing must
  // be able to access old versions of the records.
  tx::Txn* old_reader = cluster_.BeginTxn(true);

  PhysiologicalPartitioning scheme(&cluster_);
  bool done = false;
  ASSERT_TRUE(
      scheme.StartRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok());
  cluster_.RunUntil(cluster_.Now() + 120 * kUsPerSec);
  ASSERT_TRUE(done);

  // The old snapshot reads moved records through the new location.
  int readable = 0;
  for (Key k = 0; k < 200; ++k) {
    auto [part, second] = cluster_.RouteBoth(old_reader, table_, k * 50);
    ASSERT_NE(part, nullptr);
    storage::Record rec;
    Status s = cluster_.node(part->owner())->Read(old_reader, part, k * 50, &rec);
    if (s.IsNotFound() && second != nullptr) {
      s = cluster_.node(second->owner())->Read(old_reader, second, k * 50, &rec);
    }
    if (s.ok()) ++readable;
  }
  EXPECT_EQ(readable, 200);
  cluster_.tm().Commit(old_reader);
  cluster_.tm().Release(old_reader->id);
}

TEST_F(MigrationTest, WritersDuringMoveLandAtNewLocation) {
  // §4.3 Correctness case 2: transactions started after rebalancing must
  // not access old copies; writes during the drain window wait and then hit
  // the new partition.
  MigrationConfig mc;
  mc.cost_scale = 2000.0;  // Stretch the copy so the window is observable.
  PhysiologicalPartitioning scheme(&cluster_, mc);
  bool done = false;
  ASSERT_TRUE(
      scheme.StartRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok());
  // Issue an update while the move is in flight.
  cluster_.RunUntil(cluster_.Now() + 500 * kUsPerMs);
  tx::Txn* w = cluster_.BeginTxn();
  // Find a key in the moving range (the scheme moves one of two segments).
  Key probe = 0;
  catalog::Partition* dst = nullptr;
  for (Key k = 0; k < 200 && dst == nullptr; ++k) {
    auto route = cluster_.catalog().Route(table_, k * 50);
    if (route.has_value() && route->secondary.valid()) {
      probe = k * 50;
      dst = cluster_.catalog().GetPartition(route->secondary);
    }
  }
  ASSERT_NE(dst, nullptr) << "a move must be in flight";
  catalog::Partition* part = cluster_.Route(w, table_, probe);
  Status s = cluster_.node(part->owner())
                 ->Update(w, part, probe, std::vector<uint8_t>(32, 0xEE));
  if (s.IsNotFound()) {
    s = cluster_.node(dst->owner())
            ->Update(w, dst, probe, std::vector<uint8_t>(32, 0xEE));
  }
  ASSERT_TRUE(s.ok());
  cluster_.CommitTxn(cluster_.master(), w);
  cluster_.tm().Release(w->id);

  cluster_.RunUntil(cluster_.Now() + 600 * kUsPerSec);
  ASSERT_TRUE(done);
  uint8_t v = 0;
  ASSERT_TRUE(ReadKey(probe, &v).ok());
  EXPECT_EQ(v, 0xEE) << "the post-move read must see the mid-move write";
}

TEST_F(MigrationTest, DrainBlocksWritersUntilCopyDone) {
  PhysiologicalPartitioning scheme(&cluster_);
  ASSERT_TRUE(scheme.StartRebalance({NodeId(1)}, 0.5, nullptr).ok());
  // Let the mover acquire its partition read lock (the window spans one
  // real segment copy, ~10 ms for the fixture's ~320 KB segment).
  cluster_.RunUntil(cluster_.Now() + 2 * kUsPerMs);
  // A writer to the locked partition must wait (lock_wait > 0)...
  tx::Txn* w = cluster_.BeginTxn();
  catalog::Partition* part = cluster_.Route(w, table_, 0);
  Status s = cluster_.node(part->owner())
                 ->Update(w, part, 0, std::vector<uint8_t>(32, 1));
  if (s.IsNotFound()) {
    auto [f, second] = cluster_.RouteBoth(w, table_, 0);
    if (second) {
      s = cluster_.node(second->owner())->Update(w, second, 0,
                                                 std::vector<uint8_t>(32, 1));
    }
  }
  ASSERT_TRUE(s.ok());
  EXPECT_GT(w->lock_wait_us, 0) << "writer drains behind the migration lock";
  // ...but an MVCC reader does not.
  tx::Txn* r = cluster_.BeginTxn(true);
  storage::Record rec;
  ASSERT_TRUE(cluster_.node(part->owner())->Read(r, part, 50, &rec).ok());
  EXPECT_EQ(r->lock_wait_us, 0);
  cluster_.CommitTxn(cluster_.master(), w);
  cluster_.tm().Release(w->id);
  cluster_.tm().Commit(r);
  cluster_.tm().Release(r->id);
  cluster_.RunUntil(cluster_.Now() + 120 * kUsPerSec);
}

TEST_F(MigrationTest, PhysicalCannotDrain) {
  PhysicalPartitioning scheme(&cluster_);
  EXPECT_TRUE(scheme.Drain(NodeId(0), nullptr).IsNotSupported())
      << "the paper's conclusion: physical partitioning cannot transfer "
         "ownership, so scale-in is impossible";
}

TEST_F(MigrationTest, PhysiologicalDrainEmptiesNode) {
  // First spread data onto node 1, then drain it back.
  PhysiologicalPartitioning scheme(&cluster_);
  bool spread = false;
  ASSERT_TRUE(
      scheme.StartRebalance({NodeId(1)}, 0.5, [&]() { spread = true; }).ok());
  cluster_.RunUntil(cluster_.Now() + 120 * kUsPerSec);
  ASSERT_TRUE(spread);
  ASSERT_FALSE(cluster_.segments().SegmentsOn(NodeId(1)).empty());

  bool drained = false;
  ASSERT_TRUE(scheme.Drain(NodeId(1), [&]() { drained = true; }).ok());
  cluster_.RunUntil(cluster_.Now() + 120 * kUsPerSec);
  ASSERT_TRUE(drained);
  EXPECT_TRUE(cluster_.segments().SegmentsOn(NodeId(1)).empty());
  // Now the node can power off.
  EXPECT_TRUE(cluster_.PowerOff(NodeId(1)).ok());
  // And all data remains readable.
  for (Key k = 0; k < 200; ++k) {
    ASSERT_TRUE(ReadKey(k * 50, nullptr).ok()) << k;
  }
}

TEST_F(MigrationTest, RejectsConcurrentRebalance) {
  PhysiologicalPartitioning scheme(&cluster_);
  ASSERT_TRUE(scheme.StartRebalance({NodeId(1)}, 0.5, nullptr).ok());
  EXPECT_TRUE(scheme.StartRebalance({NodeId(2)}, 0.5, nullptr).IsBusy());
  cluster_.RunUntil(cluster_.Now() + 120 * kUsPerSec);
}

TEST_F(MigrationTest, RejectsInactiveTarget) {
  cluster_.node(NodeId(2))->hardware().set_power_state(hw::PowerState::kStandby);
  PhysiologicalPartitioning scheme(&cluster_);
  EXPECT_TRUE(
      scheme.StartRebalance({NodeId(2)}, 0.5, nullptr).IsUnavailable());
}

TEST_F(MigrationTest, CostScaleStretchesMigration) {
  // The substitution knob: scaled migrations take proportionally longer.
  SimTime durations[2];
  for (int i = 0; i < 2; ++i) {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.initially_active = 2;
    cluster::Cluster c(cfg);
    const TableId t = c.catalog().CreateTable(
        {TableId(), "t", {{"v", catalog::ColumnType::kString, 64}}});
    catalog::Partition* p = c.catalog().CreatePartition(t, NodeId(0));
    WATTDB_CHECK(c.catalog().AssignRange(t, {0, 1000}, p->id()).ok());
    auto s1 = c.master()->AllocateSegment(0, p, {0, 500});
    auto s2 = c.master()->AllocateSegment(0, p, {500, 1000});
    WATTDB_CHECK(s1.ok() && s2.ok());
    for (Key k = 0; k < 400; ++k) {
      WATTDB_CHECK(s1.value()->Insert(k, std::vector<uint8_t>(64, 1)).ok());
      WATTDB_CHECK(
          s2.value()->Insert(500 + k, std::vector<uint8_t>(64, 1)).ok());
    }
    MigrationConfig mc;
    mc.cost_scale = i == 0 ? 1.0 : 8.0;
    PhysiologicalPartitioning scheme(&c, mc);
    bool done = false;
    const SimTime t0 = c.Now();
    WATTDB_CHECK(
        scheme.StartRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok());
    c.RunUntil(c.Now() + 600 * kUsPerSec);
    WATTDB_CHECK(done);
    durations[i] = scheme.stats().finished_at - t0;
  }
  EXPECT_GT(durations[1], durations[0] * 3);
}

// A drain *destination* dying mid-drain must not strand the victim's data:
// the queued tasks targeting the dead node are re-targeted onto the
// remaining survivors immediately (counted in tasks_replanned), so the
// drain still finishes in its first attempt instead of wedging until the
// end-of-drain re-plan notices the leftovers. Regression test for the
// re-plan path in OnNodeFailure.
TEST(DrainReplan, DestinationDeathRetargetsQueuedTasks) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.initially_active = 4;
  cluster::Cluster cluster(cfg);
  const TableId table = cluster.catalog().CreateTable(
      {TableId(), "t", {{"v", catalog::ColumnType::kString, 64}}});
  // The drain victim (node 1) holds three segments, so PlanDrain round-
  // robins them across all three survivors — guaranteeing at least one
  // *queued* task targets node 3 when it dies.
  catalog::Partition* part = cluster.catalog().CreatePartition(table,
                                                               NodeId(1));
  WATTDB_CHECK(
      cluster.catalog().AssignRange(table, {0, 3000}, part->id()).ok());
  cluster::Node* victim = cluster.node(NodeId(1));
  for (Key lo = 0; lo < 3000; lo += 1000) {
    WATTDB_CHECK(victim->AllocateSegment(0, part, {lo, lo + 1000}).ok());
  }
  tx::Txn* w = cluster.BeginTxn();
  for (Key k = 0; k < 60; ++k) {
    WATTDB_CHECK(victim
                     ->Insert(w, part, k * 50,
                              std::vector<uint8_t>(
                                  3200, static_cast<uint8_t>(k)))
                     .ok());
  }
  cluster.CommitTxn(victim, w);
  cluster.tm().Release(w->id);

  PhysiologicalPartitioning scheme(&cluster);
  bool drained = false;
  ASSERT_TRUE(scheme.Drain(NodeId(1), [&]() { drained = true; }).ok());
  ASSERT_EQ(scheme.stats().tasks_planned, 3);
  // One task is already in flight (dst node 0); the queued ones target
  // nodes 2 and 3. Node 3 dies before its task runs.
  scheme.OnNodeFailure(NodeId(3));
  EXPECT_EQ(scheme.stats().tasks_replanned, 1)
      << "the queued task bound for the dead destination was not re-planned";
  EXPECT_EQ(scheme.stats().tasks_failed, 0)
      << "re-planning must re-target, not abandon";

  cluster.RunUntil(cluster.Now() + 120 * kUsPerSec);
  ASSERT_TRUE(drained) << "drain wedged after the destination died";
  EXPECT_TRUE(cluster.segments().SegmentsOn(NodeId(1)).empty())
      << "the victim still holds segments — its data was stranded";
  EXPECT_TRUE(cluster.segments().SegmentsOn(NodeId(3)).empty())
      << "a segment landed on the dead destination";
  EXPECT_TRUE(cluster.catalog().CheckInvariants());
  // Every record survived the re-targeted drain.
  tx::Txn* r = cluster.BeginTxn(true);
  for (Key k = 0; k < 60; ++k) {
    const auto e = cluster.catalog().Route(table, k * 50);
    ASSERT_TRUE(e.has_value()) << k;
    catalog::Partition* p = cluster.catalog().GetPartition(e->primary);
    ASSERT_NE(p, nullptr) << k;
    storage::Record rec;
    ASSERT_TRUE(cluster.node(p->owner())->Read(r, p, k * 50, &rec).ok()) << k;
    EXPECT_EQ(rec.payload[0], static_cast<uint8_t>(k));
  }
  cluster.tm().Commit(r);
  cluster.tm().Release(r->id);
}

}  // namespace
}  // namespace wattdb::partition
