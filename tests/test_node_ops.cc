// Integration tests for node-level transactional record operations: MVCC
// visibility through the full stack, aborts/undo, WAL, scans with version
// overlays, and redo recovery (§4.3 logging).

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace wattdb::cluster {
namespace {

class NodeOpsTest : public ::testing::Test {
 protected:
  NodeOpsTest() : cluster_(MakeConfig()) {
    table_ = cluster_.catalog().CreateTable(
        {TableId(), "t", {{"v", catalog::ColumnType::kString, 64}}});
    part_ = cluster_.catalog().CreatePartition(table_, NodeId(0));
    WATTDB_CHECK(
        cluster_.catalog().AssignRange(table_, {0, 100000}, part_->id()).ok());
    auto seg = cluster_.master()->AllocateSegment(0, part_, {0, 100000});
    WATTDB_CHECK(seg.ok());
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.initially_active = 2;
    return cfg;
  }

  std::vector<uint8_t> Payload(uint8_t v) {
    return std::vector<uint8_t>(32, v);
  }

  Cluster cluster_;
  TableId table_;
  catalog::Partition* part_;
};

TEST_F(NodeOpsTest, InsertThenRead) {
  Node* n = cluster_.master();
  tx::Txn* w = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(w, part_, 1, Payload(7)).ok());
  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);

  tx::Txn* r = cluster_.BeginTxn(true);
  storage::Record rec;
  ASSERT_TRUE(n->Read(r, part_, 1, &rec).ok());
  EXPECT_EQ(rec.payload[0], 7);
  EXPECT_GT(r->Elapsed(), 0);  // Simulated time moved.
  cluster_.tm().Commit(r);
  cluster_.tm().Release(r->id);
}

TEST_F(NodeOpsTest, DuplicateInsertFails) {
  Node* n = cluster_.master();
  tx::Txn* w = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(w, part_, 1, Payload(1)).ok());
  EXPECT_TRUE(n->Insert(w, part_, 1, Payload(2)).IsAlreadyExists());
  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);
}

TEST_F(NodeOpsTest, SnapshotIsolationAcrossUpdates) {
  Node* n = cluster_.master();
  tx::Txn* w1 = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(w1, part_, 1, Payload(1)).ok());
  cluster_.CommitTxn(n, w1);
  cluster_.tm().Release(w1->id);

  // Old snapshot opens BEFORE the update commits.
  tx::Txn* old_reader = cluster_.BeginTxn(true);

  tx::Txn* w2 = cluster_.BeginTxn();
  ASSERT_TRUE(n->Update(w2, part_, 1, Payload(2)).ok());
  cluster_.CommitTxn(n, w2);
  cluster_.tm().Release(w2->id);

  storage::Record rec;
  ASSERT_TRUE(n->Read(old_reader, part_, 1, &rec).ok());
  EXPECT_EQ(rec.payload[0], 1) << "old snapshot must see the pre-image";
  cluster_.tm().Commit(old_reader);
  cluster_.tm().Release(old_reader->id);

  tx::Txn* new_reader = cluster_.BeginTxn(true);
  ASSERT_TRUE(n->Read(new_reader, part_, 1, &rec).ok());
  EXPECT_EQ(rec.payload[0], 2);
  cluster_.tm().Commit(new_reader);
  cluster_.tm().Release(new_reader->id);
}

TEST_F(NodeOpsTest, DeleteVisibleOnlyToNewSnapshots) {
  Node* n = cluster_.master();
  tx::Txn* w = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(w, part_, 1, Payload(1)).ok());
  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);

  tx::Txn* old_reader = cluster_.BeginTxn(true);
  tx::Txn* d = cluster_.BeginTxn();
  ASSERT_TRUE(n->Delete(d, part_, 1).ok());
  cluster_.CommitTxn(n, d);
  cluster_.tm().Release(d->id);

  storage::Record rec;
  EXPECT_TRUE(n->Read(old_reader, part_, 1, &rec).ok())
      << "pre-delete snapshot still reads the record from the chain";
  cluster_.tm().Commit(old_reader);
  cluster_.tm().Release(old_reader->id);

  tx::Txn* new_reader = cluster_.BeginTxn(true);
  EXPECT_TRUE(n->Read(new_reader, part_, 1, &rec).IsNotFound());
  cluster_.tm().Commit(new_reader);
  cluster_.tm().Release(new_reader->id);
}

TEST_F(NodeOpsTest, AbortRollsBackPages) {
  Node* n = cluster_.master();
  tx::Txn* w = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(w, part_, 1, Payload(1)).ok());
  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);

  tx::Txn* bad = cluster_.BeginTxn();
  ASSERT_TRUE(n->Update(bad, part_, 1, Payload(9)).ok());
  ASSERT_TRUE(n->Insert(bad, part_, 2, Payload(5)).ok());
  cluster_.AbortTxn(bad);
  cluster_.tm().Release(bad->id);

  tx::Txn* r = cluster_.BeginTxn(true);
  storage::Record rec;
  ASSERT_TRUE(n->Read(r, part_, 1, &rec).ok());
  EXPECT_EQ(rec.payload[0], 1) << "update rolled back";
  EXPECT_TRUE(n->Read(r, part_, 2, &rec).IsNotFound())
      << "insert rolled back";
  cluster_.tm().Commit(r);
  cluster_.tm().Release(r->id);
}

TEST_F(NodeOpsTest, ScanSeesOnlyVisibleRecords) {
  Node* n = cluster_.master();
  tx::Txn* w = cluster_.BeginTxn();
  for (Key k = 1; k <= 10; ++k) {
    ASSERT_TRUE(n->Insert(w, part_, k, Payload(static_cast<uint8_t>(k))).ok());
  }
  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);

  tx::Txn* old_reader = cluster_.BeginTxn(true);
  tx::Txn* d = cluster_.BeginTxn();
  ASSERT_TRUE(n->Delete(d, part_, 5).ok());
  ASSERT_TRUE(n->Insert(d, part_, 11, Payload(11)).ok());
  cluster_.CommitTxn(n, d);
  cluster_.tm().Release(d->id);

  // Old snapshot: sees key 5, not key 11.
  std::vector<Key> seen;
  ASSERT_TRUE(n->ScanRange(old_reader, part_, {0, 1000},
                           [&](const storage::Record& r) {
                             seen.push_back(r.key);
                             return true;
                           })
                  .ok());
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_NE(std::find(seen.begin(), seen.end(), 5), seen.end());
  EXPECT_EQ(std::find(seen.begin(), seen.end(), 11), seen.end());
  cluster_.tm().Commit(old_reader);
  cluster_.tm().Release(old_reader->id);

  // New snapshot: no key 5, has key 11.
  tx::Txn* r = cluster_.BeginTxn(true);
  seen.clear();
  ASSERT_TRUE(n->ScanRange(r, part_, {0, 1000},
                           [&](const storage::Record& rec) {
                             seen.push_back(rec.key);
                             return true;
                           })
                  .ok());
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(std::find(seen.begin(), seen.end(), 5), seen.end());
  EXPECT_NE(std::find(seen.begin(), seen.end(), 11), seen.end());
  cluster_.tm().Commit(r);
  cluster_.tm().Release(r->id);
}

TEST_F(NodeOpsTest, MglReadersBlockBehindWriters) {
  cluster_.master()->set_cc_scheme(tx::CcScheme::kMglRx);
  Node* n = cluster_.master();
  tx::Txn* w0 = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(w0, part_, 1, Payload(1)).ok());
  cluster_.CommitTxn(n, w0);
  cluster_.tm().Release(w0->id);

  tx::Txn* w = cluster_.BeginTxn();
  ASSERT_TRUE(n->Update(w, part_, 1, Payload(2)).ok());
  // Writer "holds" its X lock until its commit time.
  const SimTime writer_commit = w->now;

  tx::Txn* r = cluster_.BeginTxn(true);
  storage::Record rec;
  ASSERT_TRUE(n->Read(r, part_, 1, &rec).ok());
  EXPECT_GE(r->now, writer_commit) << "MGL reader waits for the writer";
  EXPECT_GT(r->lock_wait_us, 0);

  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);
  cluster_.tm().Commit(r);
  cluster_.tm().Release(r->id);
}

TEST_F(NodeOpsTest, MvccReadersDoNotBlock) {
  Node* n = cluster_.master();
  tx::Txn* w0 = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(w0, part_, 1, Payload(1)).ok());
  cluster_.CommitTxn(n, w0);
  cluster_.tm().Release(w0->id);

  tx::Txn* w = cluster_.BeginTxn();
  ASSERT_TRUE(n->Update(w, part_, 1, Payload(2)).ok());

  tx::Txn* r = cluster_.BeginTxn(true);
  storage::Record rec;
  ASSERT_TRUE(n->Read(r, part_, 1, &rec).ok());
  EXPECT_EQ(r->lock_wait_us, 0) << "MVCC snapshot read takes no locks";
  EXPECT_EQ(rec.payload[0], 1) << "reader sees the pre-image";

  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);
  cluster_.tm().Commit(r);
  cluster_.tm().Release(r->id);
}

TEST_F(NodeOpsTest, WalRecordsWrittenInOrder) {
  Node* n = cluster_.master();
  tx::Txn* w = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(w, part_, 1, Payload(1)).ok());
  ASSERT_TRUE(n->Update(w, part_, 1, Payload(2)).ok());
  ASSERT_TRUE(n->Delete(w, part_, 1).ok());
  cluster_.CommitTxn(n, w);
  // Read the txn's accounting before Release frees the descriptor.
  const SimTime log_us = w->log_us;
  cluster_.tm().Release(w->id);

  const auto& records = n->log().records();
  ASSERT_GE(records.size(), 4u);
  EXPECT_EQ(records[0].type, tx::LogRecordType::kInsert);
  EXPECT_EQ(records[1].type, tx::LogRecordType::kUpdate);
  EXPECT_EQ(records[2].type, tx::LogRecordType::kDelete);
  EXPECT_EQ(records.back().type, tx::LogRecordType::kCommit);
  EXPECT_GT(log_us, 0);
}

TEST_F(NodeOpsTest, RedoRebuildsPartition) {
  Node* n = cluster_.master();
  tx::Txn* w = cluster_.BeginTxn();
  for (Key k = 1; k <= 20; ++k) {
    ASSERT_TRUE(n->Insert(w, part_, k, Payload(static_cast<uint8_t>(k))).ok());
  }
  ASSERT_TRUE(n->Update(w, part_, 3, Payload(33)).ok());
  ASSERT_TRUE(n->Delete(w, part_, 7).ok());
  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);

  // Rebuild into a fresh partition from the log tail (§4.3: the log
  // reconstructs partitions after failures).
  catalog::Partition* rebuilt =
      cluster_.catalog().CreatePartition(table_, NodeId(1));
  // Redo must target the original partition id: retag the tail.
  auto tail = n->log().Tail(0);
  for (auto& rec : tail) {
    if (rec.partition == part_->id()) rec.partition = rebuilt->id();
  }
  ASSERT_TRUE(cluster_.node(NodeId(1))->RedoInto(rebuilt, tail).ok());

  const SegmentId sid = rebuilt->SegmentFor(3);
  ASSERT_TRUE(sid.valid());
  storage::Segment* seg = cluster_.segments().Get(sid);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->record_count(), 19u);  // 20 inserts - 1 delete.
  EXPECT_EQ(seg->Read(3).value().payload[0], 33);
  EXPECT_TRUE(seg->Read(7).status().IsNotFound());
}

TEST_F(NodeOpsTest, RedoEmptyTailIsNoOp) {
  Node* n = cluster_.master();
  tx::Txn* w = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(w, part_, 1, Payload(1)).ok());
  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);

  const SegmentId sid = part_->SegmentFor(1);
  const size_t before = cluster_.segments().Get(sid)->record_count();
  ASSERT_TRUE(n->RedoInto(part_, {}).ok());
  EXPECT_EQ(cluster_.segments().Get(sid)->record_count(), before);
}

TEST_F(NodeOpsTest, RedoWithoutCoveringSegmentSkipsTheRecord) {
  // A tail can legally reference a range whose segment was deliberately
  // dropped after the record was logged (heal-time stale-copy
  // reconciliation, a mid-move detach): the data intentionally left this
  // partition. Updates and deletes must skip such records — replaying them
  // would resurrect the dropped range as unrouted garbage, and failing
  // would abort an otherwise healthy recovery.
  catalog::Partition* empty =
      cluster_.catalog().CreatePartition(table_, NodeId(0));
  tx::LogRecord upd;
  upd.type = tx::LogRecordType::kUpdate;
  upd.partition = empty->id();
  upd.key = 5;
  upd.after_image = Payload(9);
  ASSERT_TRUE(cluster_.master()->RedoInto(empty, {upd}).ok());
  EXPECT_EQ(empty->segment_count(), 0u)
      << "a skipped update must not materialize a segment";

  tx::LogRecord del = upd;
  del.type = tx::LogRecordType::kDelete;
  ASSERT_TRUE(cluster_.master()->RedoInto(empty, {del}).ok());
  EXPECT_EQ(empty->segment_count(), 0u);
}

TEST_F(NodeOpsTest, RedoIsIdempotentOverSurvivingState) {
  // Crash-recovery replays tails into partitions whose pages largely
  // survived: re-applying inserts (AlreadyExists), updates (same
  // after-image), and deletes (already gone) must all be no-ops.
  Node* n = cluster_.master();
  tx::Txn* w = cluster_.BeginTxn();
  for (Key k = 1; k <= 8; ++k) {
    ASSERT_TRUE(n->Insert(w, part_, k, Payload(static_cast<uint8_t>(k))).ok());
  }
  ASSERT_TRUE(n->Update(w, part_, 2, Payload(22)).ok());
  ASSERT_TRUE(n->Delete(w, part_, 5).ok());
  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);

  const auto tail = n->log().Tail(0);
  ASSERT_TRUE(n->RedoInto(part_, tail).ok());

  const SegmentId sid = part_->SegmentFor(1);
  storage::Segment* seg = cluster_.segments().Get(sid);
  EXPECT_EQ(seg->record_count(), 7u);  // 8 inserts - 1 delete, no dupes.
  EXPECT_EQ(seg->Read(2).value().payload[0], 22);
  EXPECT_TRUE(seg->Read(5).status().IsNotFound());
}

TEST_F(NodeOpsTest, RedoUpdateUpsertsMissingRecord) {
  // A tail may update a key a preceding record deleted (an abort's
  // compensation record restoring a deleted row's pre-image): the
  // after-image fully determines the record, so redo re-materializes it.
  tx::LogRecord upd;
  upd.type = tx::LogRecordType::kUpdate;
  upd.partition = part_->id();
  upd.table = table_;
  upd.key = 77;
  upd.after_image = Payload(42);
  ASSERT_TRUE(cluster_.master()->RedoInto(part_, {upd}).ok());

  storage::Segment* seg = cluster_.segments().Get(part_->SegmentFor(77));
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->Read(77).value().payload[0], 42);
}

TEST_F(NodeOpsTest, AbortWritesCompensationRecords) {
  // Rolling back appends CLRs so that a later full-tail redo reproduces
  // the abort instead of resurrecting the aborted write.
  Node* n = cluster_.master();
  tx::Txn* setup = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(setup, part_, 1, Payload(1)).ok());
  cluster_.CommitTxn(n, setup);
  cluster_.tm().Release(setup->id);

  tx::Txn* doomed = cluster_.BeginTxn();
  ASSERT_TRUE(n->Insert(doomed, part_, 2, Payload(2)).ok());
  ASSERT_TRUE(n->Update(doomed, part_, 1, Payload(11)).ok());
  cluster_.AbortTxn(doomed);
  cluster_.tm().Release(doomed->id);

  // Replay everything into the same partition: the aborted insert must not
  // come back, the aborted update must not stick.
  ASSERT_TRUE(n->RedoInto(part_, n->log().Tail(0)).ok());
  storage::Segment* seg = cluster_.segments().Get(part_->SegmentFor(1));
  EXPECT_EQ(seg->Read(1).value().payload[0], 1);
  EXPECT_TRUE(seg->Read(2).status().IsNotFound());
}

TEST_F(NodeOpsTest, StandbyNodeRefusesWork) {
  cluster_.node(NodeId(1))->hardware().set_power_state(hw::PowerState::kStandby);
  catalog::Partition* p2 = cluster_.catalog().CreatePartition(table_, NodeId(1));
  tx::Txn* t = cluster_.BeginTxn();
  storage::Record rec;
  EXPECT_TRUE(cluster_.node(NodeId(1))->Read(t, p2, 1, &rec).IsUnavailable());
  EXPECT_TRUE(
      cluster_.node(NodeId(1))->Insert(t, p2, 1, Payload(1)).IsUnavailable());
  cluster_.AbortTxn(t);
  cluster_.tm().Release(t->id);
}

TEST_F(NodeOpsTest, SegmentTailSplitOnOverflow) {
  Node* n = cluster_.master();
  // Insert until the first segment fills and splits (big payloads).
  tx::Txn* w = cluster_.BeginTxn();
  const std::vector<uint8_t> big(4000, 1);
  Key k = 1;
  while (part_->segment_count() < 2 && k < 20000) {
    ASSERT_TRUE(n->Insert(w, part_, k++, big).ok());
  }
  EXPECT_GE(part_->segment_count(), 2u);
  EXPECT_TRUE(part_->top_index().CheckInvariants());
  // Every inserted key still reachable.
  storage::Record rec;
  for (Key probe : {Key(1), k / 2, k - 1}) {
    EXPECT_TRUE(n->Read(w, part_, probe, &rec).ok()) << probe;
  }
  cluster_.CommitTxn(n, w);
  cluster_.tm().Release(w->id);
}

}  // namespace
}  // namespace wattdb::cluster
