// Tests for the TPC-C substrate: key packing, loader cardinalities and
// placement, transaction profiles, and functional consistency invariants.

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"
#include "workload/client.h"
#include "workload/micro.h"
#include "workload/tpcc_loader.h"
#include "workload/tpcc_txn.h"

namespace wattdb::workload {
namespace {

TEST(TpccKeys, PackingIsInjectiveAndMonotone) {
  std::set<Key> seen;
  for (int64_t w = 1; w <= 3; ++w) {
    for (int64_t d = 1; d <= 10; ++d) {
      EXPECT_TRUE(seen.insert(TpccKeys::District(w, d)).second);
      for (int64_t c = 1; c <= 20; ++c) {
        EXPECT_TRUE(seen.insert(TpccKeys::Customer(w, d, c)).second);
      }
    }
  }
  // Monotone in warehouse: ranges align with warehouses.
  EXPECT_LT(TpccKeys::Customer(1, 10, 3000), TpccKeys::Customer(2, 1, 1));
  EXPECT_LT(TpccKeys::OrderLine(1, 10, 3000, 15), TpccKeys::OrderLine(2, 1, 1, 1));
  EXPECT_LT(TpccKeys::Stock(1, 100000), TpccKeys::Stock(2, 1));
}

TEST(TpccKeys, WarehouseRangeCoversExactlyTheWarehouse) {
  for (TpccTable t : {TpccTable::kDistrict, TpccTable::kCustomer,
                      TpccTable::kOrders, TpccTable::kOrderLine,
                      TpccTable::kStock, TpccTable::kHistory}) {
    const KeyRange r = TpccKeys::WarehouseRange(t, 2, 3);
    SCOPED_TRACE(static_cast<int>(t));
    switch (t) {
      case TpccTable::kDistrict:
        EXPECT_TRUE(r.Contains(TpccKeys::District(2, 1)));
        EXPECT_TRUE(r.Contains(TpccKeys::District(2, 10)));
        EXPECT_FALSE(r.Contains(TpccKeys::District(3, 1)));
        break;
      case TpccTable::kCustomer:
        EXPECT_TRUE(r.Contains(TpccKeys::Customer(2, 1, 1)));
        EXPECT_TRUE(r.Contains(TpccKeys::Customer(2, 10, 3000)));
        EXPECT_FALSE(r.Contains(TpccKeys::Customer(1, 10, 3000)));
        break;
      case TpccTable::kOrders:
        EXPECT_TRUE(r.Contains(TpccKeys::Order(2, 10, 1 << 20)));
        EXPECT_FALSE(r.Contains(TpccKeys::Order(3, 1, 1)));
        break;
      case TpccTable::kOrderLine:
        EXPECT_TRUE(r.Contains(TpccKeys::OrderLine(2, 1, 1, 1)));
        EXPECT_FALSE(r.Contains(TpccKeys::OrderLine(3, 1, 1, 1)));
        break;
      case TpccTable::kStock:
        EXPECT_TRUE(r.Contains(TpccKeys::Stock(2, 100000)));
        EXPECT_FALSE(r.Contains(TpccKeys::Stock(3, 0)));
        break;
      case TpccTable::kHistory:
        EXPECT_TRUE(r.Contains(TpccKeys::History(2, 5, 12345)));
        EXPECT_FALSE(r.Contains(TpccKeys::History(3, 1, 0)));
        break;
      default:
        break;
    }
  }
}

TEST(TpccSchema, FieldCodecsRoundTrip) {
  std::vector<uint8_t> p(64, 0);
  PutI64(&p, 8, -12345);
  PutF64(&p, 16, 3.25);
  EXPECT_EQ(GetI64(p, 8), -12345);
  EXPECT_DOUBLE_EQ(GetF64(p, 16), 3.25);
}

TEST(TpccSchema, RegistersNineTables) {
  catalog::GlobalPartitionTable cat;
  auto ids = RegisterTpccSchema(&cat);
  ASSERT_EQ(ids.size(), static_cast<size_t>(kNumTpccTables));
  EXPECT_EQ(cat.Tables().size(), 9u);
  const auto* customer = cat.GetSchemaByName("customer");
  ASSERT_NE(customer, nullptr);
  EXPECT_EQ(customer->RecordBytes(), kCustomerBytes);
  EXPECT_EQ(cat.GetSchemaByName("stock")->RecordBytes(), kStockBytes);
}

class TpccFixture : public ::testing::Test {
 protected:
  TpccFixture() : cluster_(MakeConfig()), db_(&cluster_, MakeLoad()) {
    WATTDB_CHECK(db_.Load().ok());
  }
  static cluster::ClusterConfig MakeConfig() {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.initially_active = 2;
    cfg.buffer.capacity_pages = 2000;
    return cfg;
  }
  static TpccLoadConfig MakeLoad() {
    TpccLoadConfig load;
    load.warehouses = 2;
    load.fill = 0.05;
    load.home_nodes = {NodeId(0), NodeId(1)};
    return load;
  }

  cluster::Cluster cluster_;
  TpccDatabase db_;
};

TEST_F(TpccFixture, LoaderCardinalities) {
  // items + per-warehouse rows.
  const int64_t customers = db_.customers_per_district();
  const int64_t stock = db_.stock_per_warehouse();
  EXPECT_EQ(customers, 150);
  EXPECT_EQ(stock, 5000);
  EXPECT_GT(db_.rows_loaded(), kItems + 2 * (stock + 10 * customers));
  EXPECT_TRUE(cluster_.catalog().CheckInvariants());
}

TEST_F(TpccFixture, WarehouseGrainedPartitions) {
  // 8 warehouse-aligned tables x 2 warehouses + 2 item partitions = 18.
  size_t total = 0;
  for (TableId t : cluster_.catalog().Tables()) {
    total += cluster_.catalog().PartitionsOf(t).size();
  }
  EXPECT_EQ(total, 18u);
  // Warehouse 1 lives on node 0, warehouse 2 on node 1.
  auto r1 = cluster_.catalog().Route(db_.table(TpccTable::kCustomer),
                                     TpccKeys::Customer(1, 1, 1));
  auto r2 = cluster_.catalog().Route(db_.table(TpccTable::kCustomer),
                                     TpccKeys::Customer(2, 1, 1));
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  EXPECT_EQ(cluster_.catalog().GetPartition(r1->primary)->owner(), NodeId(0));
  EXPECT_EQ(cluster_.catalog().GetPartition(r2->primary)->owner(), NodeId(1));
}

TEST_F(TpccFixture, AllTransactionTypesCommit) {
  TpccRunner runner(&db_);
  Rng rng(5);
  for (auto type : {TpccTxnType::kNewOrder, TpccTxnType::kPayment,
                    TpccTxnType::kOrderStatus, TpccTxnType::kDelivery,
                    TpccTxnType::kStockLevel}) {
    int committed = 0;
    for (int i = 0; i < 10; ++i) {
      auto r = runner.Run(type, &rng);
      if (r.committed) ++committed;
      EXPECT_GT(r.latency_us, 0);
      cluster_.RunUntil(cluster_.Now() + 100 * kUsPerMs);
    }
    EXPECT_GE(committed, 9) << TpccTxnName(type);
  }
}

TEST_F(TpccFixture, NewOrderCreatesOrderRows) {
  TpccRunner runner(&db_);
  Rng rng(5);
  const int64_t before_oid = db_.PeekNextOid(1, 1);
  // Run NewOrders until district (1,1) receives one.
  for (int i = 0; i < 200 && db_.PeekNextOid(1, 1) == before_oid; ++i) {
    runner.Run(TpccTxnType::kNewOrder, &rng);
    cluster_.RunUntil(cluster_.Now() + 10 * kUsPerMs);
  }
  ASSERT_GT(db_.PeekNextOid(1, 1), before_oid);
  // The order + its lines are readable.
  tx::Txn* r = cluster_.BeginTxn(true);
  const Key okey = TpccKeys::Order(1, 1, before_oid);
  catalog::Partition* part =
      cluster_.Route(r, db_.table(TpccTable::kOrders), okey);
  ASSERT_NE(part, nullptr);
  storage::Record rec;
  ASSERT_TRUE(cluster_.node(part->owner())->Read(r, part, okey, &rec).ok());
  const int64_t ol_cnt = GetI64(rec.payload, OrderFields::kOlCount);
  EXPECT_GE(ol_cnt, 5);
  EXPECT_LE(ol_cnt, 15);
  cluster_.tm().Commit(r);
  cluster_.tm().Release(r->id);
}

TEST_F(TpccFixture, PaymentConservesMoney) {
  // Sum of (customer balance decrease) == sum of (warehouse ytd increase).
  TpccRunner runner(&db_);
  Rng rng(7);
  auto warehouse_ytd = [&](int64_t w) {
    tx::Txn* r = cluster_.BeginTxn(true);
    catalog::Partition* part = cluster_.Route(
        r, db_.table(TpccTable::kWarehouse), TpccKeys::Warehouse(w));
    storage::Record rec;
    WATTDB_CHECK(cluster_.node(part->owner())
                     ->Read(r, part, TpccKeys::Warehouse(w), &rec)
                     .ok());
    cluster_.tm().Commit(r);
    cluster_.tm().Release(r->id);
    return GetF64(rec.payload, WarehouseFields::kYtd);
  };
  const double before = warehouse_ytd(1) + warehouse_ytd(2);
  double committed_amounts = 0;
  for (int i = 0; i < 50; ++i) {
    auto res = runner.Run(TpccTxnType::kPayment, &rng);
    cluster_.RunUntil(cluster_.Now() + 20 * kUsPerMs);
    (void)res;
  }
  const double after = warehouse_ytd(1) + warehouse_ytd(2);
  EXPECT_GT(after, before) << "payments must raise warehouse YTD";
  (void)committed_amounts;
}

TEST_F(TpccFixture, DeliveryConsumesNewOrders) {
  TpccRunner runner(&db_);
  Rng rng(11);
  // Count NEW_ORDER rows of warehouse 1 before/after deliveries.
  auto count_new_orders = [&]() {
    tx::Txn* r = cluster_.BeginTxn(true);
    size_t n = 0;
    const KeyRange range = TpccKeys::WarehouseRange(TpccTable::kNewOrder, 1, 2);
    catalog::Partition* part = cluster_.Route(
        r, db_.table(TpccTable::kNewOrder), TpccKeys::NewOrder(1, 1, 106));
    WATTDB_CHECK(part != nullptr);
    WATTDB_CHECK(cluster_.node(part->owner())
                     ->ScanRange(r, part, range,
                                 [&](const storage::Record&) {
                                   ++n;
                                   return true;
                                 })
                     .ok());
    cluster_.tm().Commit(r);
    cluster_.tm().Release(r->id);
    return n;
  };
  const size_t before = count_new_orders();
  ASSERT_GT(before, 0u);
  for (int i = 0; i < 12; ++i) {
    runner.Run(TpccTxnType::kDelivery, &rng);
    cluster_.RunUntil(cluster_.Now() + 50 * kUsPerMs);
  }
  EXPECT_LT(count_new_orders(), before);
}

TEST_F(TpccFixture, MixRoughlyMatchesSpec) {
  TpccMix mix;
  Rng rng(3);
  int counts[5] = {0};
  for (int i = 0; i < 20000; ++i) {
    counts[static_cast<int>(mix.Pick(&rng))]++;
  }
  EXPECT_NEAR(counts[0] / 20000.0, 0.45, 0.02);  // NewOrder.
  EXPECT_NEAR(counts[1] / 20000.0, 0.43, 0.02);  // Payment.
  EXPECT_NEAR(counts[4] / 20000.0, 0.04, 0.01);  // StockLevel.
}

TEST_F(TpccFixture, ClientPoolDrivesThroughput) {
  ClientPoolConfig cfg;
  cfg.num_clients = 8;
  cfg.think_time = 30 * kUsPerMs;
  ClientPool pool(&db_, cfg);
  metrics::TimeSeries series(kUsPerSec);
  pool.set_series(&series);
  pool.Start();
  cluster_.RunUntil(cluster_.Now() + 15 * kUsPerSec);
  pool.Stop();
  EXPECT_GT(pool.completed(), 100);
  EXPECT_GT(pool.latencies().count(), 0);
  EXPECT_FALSE(series.buckets().empty());
  // Closed loop: qps bounded by clients/think.
  EXPECT_LT(pool.completed(), 15.0 * cfg.num_clients / 0.030 + 1);
}

TEST_F(TpccFixture, MicroWorkloadReadsAndWrites) {
  MicroConfig cfg;
  cfg.num_clients = 4;
  cfg.update_ratio = 0.5;
  MicroWorkload micro(&db_, cfg);
  micro.Start();
  cluster_.RunUntil(cluster_.Now() + 10 * kUsPerSec);
  micro.Stop();
  EXPECT_GT(micro.committed(), 50);
  EXPECT_EQ(micro.aborted(), 0);
}

TEST(TpccLoader, SingleNodeLoad) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 1;
  cluster::Cluster c(cfg);
  TpccLoadConfig load;
  load.warehouses = 1;
  load.fill = 0.02;
  load.home_nodes = {NodeId(0)};
  TpccDatabase db(&c, load);
  ASSERT_TRUE(db.Load().ok());
  EXPECT_GT(db.rows_loaded(), kItems);
}

TEST(TpccLoader, FailsOnStandbyHomeNode) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.initially_active = 1;
  cluster::Cluster c(cfg);
  TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.02;
  load.home_nodes = {NodeId(0), NodeId(1)};  // Node 1 is standby.
  TpccDatabase db(&c, load);
  EXPECT_TRUE(db.Load().IsUnavailable());
}

}  // namespace
}  // namespace wattdb::workload
