// Unit tests for the catalog: schemas, partitions, and the master's global
// routing table with two-pointer move entries.

#include <gtest/gtest.h>

#include "catalog/global_partition_table.h"

namespace wattdb::catalog {
namespace {

TableSchema SimpleSchema(const char* name) {
  TableSchema s;
  s.name = name;
  s.columns = {{"a", ColumnType::kInt64, 8}, {"b", ColumnType::kDouble, 8}};
  return s;
}

TEST(Schema, RecordBytesAndColumnIndex) {
  TableSchema s = SimpleSchema("t");
  EXPECT_EQ(s.RecordBytes(), 16u);
  EXPECT_EQ(s.ColumnIndex("b"), 1);
  EXPECT_EQ(s.ColumnIndex("zzz"), -1);
}

TEST(Catalog, CreateTableAndLookup) {
  GlobalPartitionTable cat;
  const TableId t = cat.CreateTable(SimpleSchema("orders"));
  ASSERT_NE(cat.GetSchema(t), nullptr);
  EXPECT_EQ(cat.GetSchema(t)->name, "orders");
  EXPECT_EQ(cat.GetSchemaByName("orders")->id, t);
  EXPECT_EQ(cat.GetSchemaByName("nope"), nullptr);
  EXPECT_EQ(cat.Tables().size(), 1u);
}

TEST(Catalog, PartitionLifecycle) {
  GlobalPartitionTable cat;
  const TableId t = cat.CreateTable(SimpleSchema("t"));
  Partition* p = cat.CreatePartition(t, NodeId(1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->owner(), NodeId(1));
  EXPECT_EQ(cat.GetPartition(p->id()), p);
  EXPECT_EQ(cat.PartitionsOf(t).size(), 1u);
  EXPECT_EQ(cat.PartitionsOwnedBy(NodeId(1)).size(), 1u);
  EXPECT_TRUE(cat.PartitionsOwnedBy(NodeId(2)).empty());
  // Save the id: DropPartition frees the object `p` points at.
  const PartitionId pid = p->id();
  ASSERT_TRUE(cat.DropPartition(pid).ok());
  EXPECT_EQ(cat.GetPartition(pid), nullptr);
}

TEST(Catalog, DropRefusesRoutedPartition) {
  GlobalPartitionTable cat;
  const TableId t = cat.CreateTable(SimpleSchema("t"));
  Partition* p = cat.CreatePartition(t, NodeId(0));
  ASSERT_TRUE(cat.AssignRange(t, {0, 100}, p->id()).ok());
  EXPECT_TRUE(cat.DropPartition(p->id()).IsBusy());
  ASSERT_TRUE(cat.UnassignRange(t, {0, 100}).ok());
  EXPECT_TRUE(cat.DropPartition(p->id()).ok());
}

TEST(Catalog, RouteLookup) {
  GlobalPartitionTable cat;
  const TableId t = cat.CreateTable(SimpleSchema("t"));
  Partition* a = cat.CreatePartition(t, NodeId(0));
  Partition* b = cat.CreatePartition(t, NodeId(1));
  ASSERT_TRUE(cat.AssignRange(t, {0, 100}, a->id()).ok());
  ASSERT_TRUE(cat.AssignRange(t, {100, 200}, b->id()).ok());
  ASSERT_TRUE(cat.Route(t, 50).has_value());
  EXPECT_EQ(cat.Route(t, 50)->primary, a->id());
  EXPECT_EQ(cat.Route(t, 150)->primary, b->id());
  EXPECT_FALSE(cat.Route(t, 250).has_value());
  EXPECT_TRUE(cat.CheckInvariants());
}

TEST(Catalog, AssignRangeSplitsOverlaps) {
  GlobalPartitionTable cat;
  const TableId t = cat.CreateTable(SimpleSchema("t"));
  Partition* a = cat.CreatePartition(t, NodeId(0));
  Partition* b = cat.CreatePartition(t, NodeId(1));
  ASSERT_TRUE(cat.AssignRange(t, {0, 100}, a->id()).ok());
  // Reassign the middle to b: a keeps the flanks.
  ASSERT_TRUE(cat.AssignRange(t, {40, 60}, b->id()).ok());
  EXPECT_EQ(cat.Route(t, 39)->primary, a->id());
  EXPECT_EQ(cat.Route(t, 40)->primary, b->id());
  EXPECT_EQ(cat.Route(t, 59)->primary, b->id());
  EXPECT_EQ(cat.Route(t, 60)->primary, a->id());
  EXPECT_EQ(cat.AllRoutes(t).size(), 3u);
  EXPECT_TRUE(cat.CheckInvariants());
}

TEST(Catalog, TwoPointerMoveProtocol) {
  GlobalPartitionTable cat;
  const TableId t = cat.CreateTable(SimpleSchema("t"));
  Partition* a = cat.CreatePartition(t, NodeId(0));
  Partition* b = cat.CreatePartition(t, NodeId(1));
  ASSERT_TRUE(cat.AssignRange(t, {0, 100}, a->id()).ok());

  // Begin: both pointers visible (§4.3 Housekeeping).
  ASSERT_TRUE(cat.BeginMove(t, {20, 40}, b->id()).ok());
  auto mid = cat.Route(t, 30);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->primary, a->id());
  EXPECT_EQ(mid->secondary, b->id());
  // Outside the moving range: untouched.
  EXPECT_FALSE(cat.Route(t, 10)->secondary.valid());

  // Complete: primary flips, secondary cleared.
  ASSERT_TRUE(cat.CompleteMove(t, {20, 40}, b->id()).ok());
  mid = cat.Route(t, 30);
  EXPECT_EQ(mid->primary, b->id());
  EXPECT_FALSE(mid->secondary.valid());
  EXPECT_EQ(cat.Route(t, 10)->primary, a->id());
  EXPECT_TRUE(cat.CheckInvariants());
}

TEST(Catalog, RoutesInRange) {
  GlobalPartitionTable cat;
  const TableId t = cat.CreateTable(SimpleSchema("t"));
  Partition* a = cat.CreatePartition(t, NodeId(0));
  ASSERT_TRUE(cat.AssignRange(t, {0, 10}, a->id()).ok());
  ASSERT_TRUE(cat.AssignRange(t, {10, 20}, a->id()).ok());
  ASSERT_TRUE(cat.AssignRange(t, {50, 60}, a->id()).ok());
  EXPECT_EQ(cat.RoutesInRange(t, {5, 15}).size(), 2u);
  EXPECT_EQ(cat.RoutesInRange(t, {0, 100}).size(), 3u);
  EXPECT_TRUE(cat.RoutesInRange(t, {30, 40}).empty());
}

TEST(Catalog, InvalidArguments) {
  GlobalPartitionTable cat;
  const TableId t = cat.CreateTable(SimpleSchema("t"));
  Partition* a = cat.CreatePartition(t, NodeId(0));
  EXPECT_TRUE(cat.AssignRange(t, {5, 5}, a->id()).IsInvalidArgument());
  EXPECT_TRUE(cat.AssignRange(TableId(99), {0, 1}, a->id()).IsNotFound());
  EXPECT_TRUE(cat.AssignRange(t, {0, 1}, PartitionId(99)).IsNotFound());
}

TEST(Partition, StateAndForwarding) {
  Partition p(PartitionId(1), TableId(1), NodeId(0));
  EXPECT_EQ(p.state(), PartitionState::kNormal);
  p.set_state(PartitionState::kForwarding);
  p.set_forward_to(PartitionId(2));
  EXPECT_EQ(p.forward_to(), PartitionId(2));
  p.set_owner(NodeId(5));
  EXPECT_EQ(p.owner(), NodeId(5));
}

TEST(Partition, SegmentAttachment) {
  Partition p(PartitionId(1), TableId(1), NodeId(0));
  ASSERT_TRUE(p.AttachSegment({0, 50}, SegmentId(7)).ok());
  EXPECT_EQ(p.SegmentFor(25), SegmentId(7));
  EXPECT_EQ(p.SegmentFor(50), SegmentId::Invalid());
  EXPECT_EQ(p.segment_count(), 1u);
  EXPECT_EQ(p.SegmentsInRange({10, 20}).size(), 1u);
  ASSERT_TRUE(p.DetachSegment(SegmentId(7)).ok());
  EXPECT_EQ(p.segment_count(), 0u);
}

TEST(Catalog, RouteRefcountsTrackEveryMutator) {
  GlobalPartitionTable cat;
  const TableId t = cat.CreateTable(SimpleSchema("t"));
  Partition* p1 = cat.CreatePartition(t, NodeId(0));
  Partition* p2 = cat.CreatePartition(t, NodeId(1));

  // Unrouted partitions drop freely; routed ones are pinned.
  EXPECT_EQ(cat.RouteRefs(p1->id()), 0);
  ASSERT_TRUE(cat.AssignRange(t, {0, 100}, p1->id()).ok());
  EXPECT_EQ(cat.RouteRefs(p1->id()), 1);
  EXPECT_TRUE(cat.DropPartition(p1->id()).IsBusy());

  // Splitting an entry clones its references: carving [25, 75) out of
  // p1's range leaves p1 with the two remainders.
  ASSERT_TRUE(cat.AssignRange(t, {25, 75}, p2->id()).ok());
  EXPECT_EQ(cat.RouteRefs(p1->id()), 2);
  EXPECT_EQ(cat.RouteRefs(p2->id()), 1);
  EXPECT_TRUE(cat.CheckInvariants());

  // A move in flight pins the target through the secondary pointer — a
  // stale secondary alone must keep the partition undroppable.
  Partition* p3 = cat.CreatePartition(t, NodeId(1));
  ASSERT_TRUE(cat.BeginMove(t, {0, 25}, p3->id()).ok());
  EXPECT_EQ(cat.RouteRefs(p3->id()), 1);
  EXPECT_TRUE(cat.DropPartition(p3->id()).IsBusy());
  EXPECT_TRUE(cat.CheckInvariants());

  // Aborting the move releases the secondary; the target drops cleanly.
  ASSERT_TRUE(cat.AbortMove(t, {0, 25}, p3->id()).ok());
  EXPECT_EQ(cat.RouteRefs(p3->id()), 0);
  EXPECT_TRUE(cat.DropPartition(p3->id()).ok());
  EXPECT_TRUE(cat.CheckInvariants());

  // Completing a move re-homes the reference from source to target.
  Partition* p4 = cat.CreatePartition(t, NodeId(1));
  ASSERT_TRUE(cat.BeginMove(t, {0, 25}, p4->id()).ok());
  ASSERT_TRUE(cat.CompleteMove(t, {0, 25}, p4->id()).ok());
  EXPECT_EQ(cat.RouteRefs(p4->id()), 1);
  EXPECT_EQ(cat.RouteRefs(p1->id()), 1) << "only [75, 100) left on p1";
  EXPECT_TRUE(cat.CheckInvariants());

  // Unassigning the remaining ranges unpins everything.
  ASSERT_TRUE(cat.UnassignRange(t, {0, 100}).ok());
  EXPECT_EQ(cat.RouteRefs(p1->id()), 0);
  EXPECT_EQ(cat.RouteRefs(p2->id()), 0);
  EXPECT_EQ(cat.RouteRefs(p4->id()), 0);
  EXPECT_TRUE(cat.DropPartition(p1->id()).ok());
  EXPECT_TRUE(cat.DropPartition(p2->id()).ok());
  EXPECT_TRUE(cat.DropPartition(p4->id()).ok());
  EXPECT_TRUE(cat.CheckInvariants());
}

TEST(Catalog, SchemaNameLookupSurvivesManyTables) {
  GlobalPartitionTable cat;
  std::vector<TableId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(cat.CreateTable(SimpleSchema(
        ("table-" + std::to_string(i)).c_str())));
  }
  for (int i = 0; i < 64; ++i) {
    const TableSchema* s = cat.GetSchemaByName("table-" + std::to_string(i));
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->id, ids[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(cat.GetSchemaByName("nope"), nullptr);
}

}  // namespace
}  // namespace wattdb::catalog
