// Unit tests for src/common: Status/Result, strong ids, key ranges, RNG,
// statistics.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"

namespace wattdb {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(Status, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange().IsOutOfRange());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::Busy("locked");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBusy());
}

TEST(Result, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(Result, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status Helper(bool fail) {
  if (fail) return Status::Aborted("nope");
  return Status::OK();
}

Status UseReturnMacro(bool fail) {
  WATTDB_RETURN_IF_ERROR(Helper(fail));
  return Status::OK();
}

TEST(StatusMacros, ReturnIfError) {
  EXPECT_TRUE(UseReturnMacro(false).ok());
  EXPECT_TRUE(UseReturnMacro(true).IsAborted());
}

TEST(Ids, InvalidByDefault) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_EQ(n, NodeId::Invalid());
}

TEST(Ids, DistinctTagTypesDoNotCompare) {
  NodeId n(3);
  SegmentId s(3);
  EXPECT_TRUE(n.valid());
  EXPECT_TRUE(s.valid());
  // Compile-time property: NodeId and SegmentId are distinct types.
  static_assert(!std::is_same_v<NodeId, SegmentId>);
}

TEST(Ids, Ordering) {
  EXPECT_LT(TxnId(1), TxnId(2));
  EXPECT_GT(TxnId(5), TxnId(2));
  EXPECT_LE(TxnId(2), TxnId(2));
}

TEST(Ids, Hashable) {
  std::set<uint32_t> seen;
  std::hash<PartitionId> h;
  EXPECT_NE(h(PartitionId(1)), h(PartitionId(2)));
}

TEST(KeyRange, Contains) {
  KeyRange r{10, 20};
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_FALSE(r.Contains(9));
}

TEST(KeyRange, Overlaps) {
  KeyRange a{10, 20};
  EXPECT_TRUE(a.Overlaps({15, 25}));
  EXPECT_TRUE(a.Overlaps({0, 11}));
  EXPECT_FALSE(a.Overlaps({20, 30}));
  EXPECT_FALSE(a.Overlaps({0, 10}));
}

TEST(KeyRange, EmptyAndToString) {
  EXPECT_TRUE((KeyRange{5, 5}).Empty());
  EXPECT_FALSE((KeyRange{5, 6}).Empty());
  EXPECT_EQ((KeyRange{1, 9}).ToString(), "[1, 9)");
  EXPECT_EQ((KeyRange{0, kMaxKey}).ToString(), "[0, max)");
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_DOUBLE_EQ(ToSeconds(kUsPerSec), 1.0);
  EXPECT_EQ(FromSeconds(2.5), 2'500'000);
  EXPECT_EQ(FromMillis(1.5), 1500);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerate) {
  Rng rng(9);
  EXPECT_EQ(rng.UniformInt(7, 7), 7);
  EXPECT_EQ(rng.UniformInt(9, 3), 9);  // hi < lo clamps to lo.
}

TEST(Rng, UniformDoubleRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, NURandInBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NURand(1023, 1, 3000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(Rng, NURandIsSkewed) {
  // NURand produces a non-uniform distribution: the chi-square statistic
  // against uniform should be large.
  Rng rng(19);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[(rng.NURand(255, 1, 1000) - 1) / 100]++;
  }
  double chi2 = 0;
  const double expected = n / static_cast<double>(kBuckets);
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_GT(chi2, 100.0);
}

TEST(Rng, ZipfInBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Zipf(100, 0.9), 100u);
  }
}

TEST(Rng, ZipfSkewsTowardZero) {
  Rng rng(29);
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(1000, 0.99) < 10) ++low;
  }
  // With theta ~1, the first 1% of items should draw far more than 1%.
  EXPECT_GT(low, n / 20);
}

TEST(RunningStat, Basics) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  s.Add(1);
  s.Add(2);
  s.Add(3);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_NEAR(s.stddev(), 0.8165, 1e-3);
}

TEST(RunningStat, Reset) {
  RunningStat s;
  s.Add(5);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, CountMeanPercentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_NEAR(h.mean(), 500.5, 0.1);
  EXPECT_NEAR(h.Percentile(50), 500, 150);
  EXPECT_NEAR(h.Percentile(99), 990, 200);
  EXPECT_LE(h.Percentile(100), 1000.0);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_NEAR(a.mean(), 505.0, 0.1);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.has_value());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> r = Status::NotFound("no such key");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.has_value());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "no such key");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StatusOr, OkStatusIsAnInternalError) {
  StatusOr<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOr, MemberAccessThroughArrow) {
  StatusOr<std::pair<int, int>> r = std::make_pair(1, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->second, 2);
}

}  // namespace
}  // namespace wattdb
