// Unit tests for the transaction layer: MGL-RX lock manager, MVCC version
// store, WAL, and the transaction manager.

#include <gtest/gtest.h>

#include "hw/disk.h"
#include "hw/network.h"
#include "tx/lock_manager.h"
#include "tx/log_manager.h"
#include "tx/transaction_manager.h"
#include "tx/version_store.h"

namespace wattdb::tx {
namespace {

// ------------------------------------------------------------ LockManager

TEST(LockCompatibility, StandardMglMatrix) {
  using M = LockMode;
  EXPECT_TRUE(LockCompatible(M::kIS, M::kIS));
  EXPECT_TRUE(LockCompatible(M::kIS, M::kIX));
  EXPECT_TRUE(LockCompatible(M::kIS, M::kS));
  EXPECT_FALSE(LockCompatible(M::kIS, M::kX));
  EXPECT_TRUE(LockCompatible(M::kIX, M::kIX));
  EXPECT_FALSE(LockCompatible(M::kIX, M::kS));
  EXPECT_TRUE(LockCompatible(M::kS, M::kS));
  EXPECT_FALSE(LockCompatible(M::kS, M::kIX));
  EXPECT_FALSE(LockCompatible(M::kX, M::kIS));
  EXPECT_FALSE(LockCompatible(M::kX, M::kX));
}

TEST(LockManager, GrantWithoutConflict) {
  LockManager lm;
  auto g = lm.Acquire(LockResource::Record(PartitionId(1), 5), LockMode::kX,
                      TxnId(1), 100, 200);
  EXPECT_EQ(g.granted_at, 100);
  EXPECT_EQ(g.waited_us, 0);
}

TEST(LockManager, ConflictWaitsUntilRelease) {
  LockManager lm;
  const auto res = LockResource::Record(PartitionId(1), 5);
  lm.Acquire(res, LockMode::kX, TxnId(1), 100, 300);
  auto g = lm.Acquire(res, LockMode::kX, TxnId(2), 150, 500);
  EXPECT_EQ(g.granted_at, 300);
  EXPECT_EQ(g.waited_us, 150);
}

TEST(LockManager, SharedReadersDoNotWait) {
  LockManager lm;
  const auto res = LockResource::Record(PartitionId(1), 5);
  lm.Acquire(res, LockMode::kS, TxnId(1), 100, 300);
  auto g = lm.Acquire(res, LockMode::kS, TxnId(2), 150, 400);
  EXPECT_EQ(g.waited_us, 0);
}

TEST(LockManager, IntentionLocksCoexist) {
  LockManager lm;
  const auto res = LockResource::Partition(PartitionId(1));
  lm.Acquire(res, LockMode::kIX, TxnId(1), 0, 1000);
  auto g = lm.Acquire(res, LockMode::kIX, TxnId(2), 0, 1000);
  EXPECT_EQ(g.waited_us, 0);
}

TEST(LockManager, MigrationDrainSemantics) {
  // §4.3: the mover's partition S lock waits for writers (IX) to finish and
  // blocks new writers, but IS readers pass.
  LockManager lm;
  const auto part = LockResource::Partition(PartitionId(7));
  lm.Acquire(part, LockMode::kIX, TxnId(1), 0, 250);  // In-flight writer.
  auto mover = lm.Acquire(part, LockMode::kS, TxnId(2), 100, 100 + 5000);
  EXPECT_EQ(mover.granted_at, 250);  // Drained.
  auto writer = lm.Acquire(part, LockMode::kIX, TxnId(3), 300, 600);
  EXPECT_EQ(writer.granted_at, 5100);  // Blocked until copy ends.
  auto reader = lm.Acquire(part, LockMode::kIS, TxnId(4), 300, 400);
  EXPECT_EQ(reader.waited_us, 0);  // Readers unaffected.
}

TEST(LockManager, SettleTruncatesHold) {
  LockManager lm;
  const auto res = LockResource::Record(PartitionId(1), 5);
  lm.Acquire(res, LockMode::kX, TxnId(1), 100, 100 + kUsPerSec);
  lm.SettleAll(TxnId(1), 180);  // Actually committed at 180.
  auto g = lm.Acquire(res, LockMode::kX, TxnId(2), 150, 400);
  EXPECT_EQ(g.granted_at, 180);
}

TEST(LockManager, ReacquireExtendsOwnGrant) {
  LockManager lm;
  const auto res = LockResource::Record(PartitionId(1), 5);
  lm.Acquire(res, LockMode::kX, TxnId(1), 100, 200);
  auto again = lm.Acquire(res, LockMode::kX, TxnId(1), 150, 400);
  EXPECT_EQ(again.waited_us, 0);
  auto other = lm.Acquire(res, LockMode::kX, TxnId(2), 150, 600);
  EXPECT_EQ(other.granted_at, 400);  // Extended hold observed.
}

TEST(LockManager, UpgradeWaitsForPeers) {
  LockManager lm;
  const auto res = LockResource::Record(PartitionId(1), 5);
  lm.Acquire(res, LockMode::kS, TxnId(1), 0, 500);
  lm.Acquire(res, LockMode::kS, TxnId(2), 0, 300);
  auto up = lm.Acquire(res, LockMode::kX, TxnId(1), 100, 600);
  EXPECT_EQ(up.granted_at, 300);  // Waits for the other reader only.
}

TEST(LockManager, ReleaseAllRemovesGrants) {
  LockManager lm;
  const auto res = LockResource::Record(PartitionId(1), 5);
  lm.Acquire(res, LockMode::kX, TxnId(1), 0, 10000);
  lm.ReleaseAll(TxnId(1));
  auto g = lm.Acquire(res, LockMode::kX, TxnId(2), 0, 100);
  EXPECT_EQ(g.waited_us, 0);
  EXPECT_EQ(lm.GrantCount(), 1u);
}

TEST(LockManager, PruneDropsExpired) {
  LockManager lm;
  lm.Acquire(LockResource::Record(PartitionId(1), 1), LockMode::kS, TxnId(1),
             0, 100);
  lm.Acquire(LockResource::Record(PartitionId(1), 2), LockMode::kS, TxnId(2),
             0, 900);
  lm.Prune(500);
  EXPECT_EQ(lm.GrantCount(), 1u);
}

// ------------------------------------------------------------ VersionStore

Txn MakeTxn(uint64_t id, SimTime now = 0) {
  Txn t;
  t.id = TxnId(id);
  t.begin_ts = id;
  t.start_time = now;
  t.now = now;
  return t;
}

std::vector<uint8_t> Payload(uint8_t v) { return std::vector<uint8_t>(16, v); }

TEST(VersionStore, BulkLoadedReadsFromPage) {
  VersionStore vs;
  auto view = vs.Read(TableId(1), 42, 100, TxnId(5));
  EXPECT_EQ(view.source, VersionStore::ReadView::Source::kPage);
}

TEST(VersionStore, ProvisionalVisibleOnlyToWriter) {
  VersionStore vs;
  Txn w = MakeTxn(10);
  ASSERT_TRUE(vs.Write(TableId(1), 42, w, Payload(1), Payload(2), false).ok());
  // Writer sees its own provisional version (materialized in the page).
  EXPECT_EQ(vs.Read(TableId(1), 42, 10, w.id).source,
            VersionStore::ReadView::Source::kPage);
  // A concurrent reader resolves to the pre-image from the chain.
  auto other = vs.Read(TableId(1), 42, 9, TxnId(9));
  EXPECT_EQ(other.source, VersionStore::ReadView::Source::kChain);
  ASSERT_NE(other.payload, nullptr);
  EXPECT_EQ((*other.payload)[0], 1);
}

TEST(VersionStore, CommitMakesVersionVisible) {
  VersionStore vs;
  Txn w = MakeTxn(10);
  ASSERT_TRUE(vs.Write(TableId(1), 42, w, Payload(1), Payload(2), false).ok());
  w.commit_ts = 20;
  vs.Commit(w);
  // Snapshot after commit reads the page (newest version).
  EXPECT_EQ(vs.Read(TableId(1), 42, 25, TxnId(25)).source,
            VersionStore::ReadView::Source::kPage);
  // Snapshot before commit still reads the old version from the chain.
  auto old_view = vs.Read(TableId(1), 42, 15, TxnId(15));
  EXPECT_EQ(old_view.source, VersionStore::ReadView::Source::kChain);
  EXPECT_EQ((*old_view.payload)[0], 1);
}

TEST(VersionStore, DeleteKeepsOldVersionForOldReaders) {
  VersionStore vs;
  Txn w = MakeTxn(10);
  ASSERT_TRUE(
      vs.Write(TableId(1), 42, w, Payload(1), std::nullopt, true).ok());
  w.commit_ts = 20;
  vs.Commit(w);
  EXPECT_EQ(vs.Read(TableId(1), 42, 25, TxnId(25)).source,
            VersionStore::ReadView::Source::kDeleted);
  auto old_view = vs.Read(TableId(1), 42, 15, TxnId(15));
  EXPECT_EQ(old_view.source, VersionStore::ReadView::Source::kChain);
  EXPECT_EQ((*old_view.payload)[0], 1);
}

TEST(VersionStore, FreshInsertInvisibleToOlderSnapshots) {
  VersionStore vs;
  Txn w = MakeTxn(10);
  ASSERT_TRUE(
      vs.Write(TableId(1), 42, w, std::nullopt, Payload(3), false).ok());
  w.commit_ts = 20;
  vs.Commit(w);
  EXPECT_EQ(vs.Read(TableId(1), 42, 15, TxnId(15)).source,
            VersionStore::ReadView::Source::kInvisible);
  EXPECT_EQ(vs.Read(TableId(1), 42, 21, TxnId(21)).source,
            VersionStore::ReadView::Source::kPage);
}

TEST(VersionStore, WriteWriteConflictRejected) {
  VersionStore vs;
  Txn a = MakeTxn(10), b = MakeTxn(11);
  ASSERT_TRUE(vs.Write(TableId(1), 42, a, Payload(1), Payload(2), false).ok());
  EXPECT_TRUE(vs.Write(TableId(1), 42, b, std::nullopt, Payload(3), false)
                  .IsBusy());
  EXPECT_TRUE(vs.HasConflictingWriter(TableId(1), 42, b.id));
  EXPECT_FALSE(vs.HasConflictingWriter(TableId(1), 42, a.id));
}

TEST(VersionStore, AbortRestoresPreImage) {
  VersionStore vs;
  Txn w = MakeTxn(10);
  ASSERT_TRUE(vs.Write(TableId(1), 42, w, Payload(1), Payload(2), false).ok());
  auto undo = vs.Abort(w);
  ASSERT_EQ(undo.size(), 1u);
  ASSERT_TRUE(undo[0].pre_image.has_value());
  EXPECT_EQ((*undo[0].pre_image)[0], 1);
  // Chain rolled back to the pre-image; new readers see the page again.
  EXPECT_EQ(vs.Read(TableId(1), 42, 20, TxnId(20)).source,
            VersionStore::ReadView::Source::kPage);
}

TEST(VersionStore, AbortOfInsertDemandsDeletion) {
  VersionStore vs;
  Txn w = MakeTxn(10);
  ASSERT_TRUE(
      vs.Write(TableId(1), 42, w, std::nullopt, Payload(2), false).ok());
  auto undo = vs.Abort(w);
  ASSERT_EQ(undo.size(), 1u);
  EXPECT_FALSE(undo[0].pre_image.has_value());
}

TEST(VersionStore, GcReclaimsOldVersions) {
  VersionStore vs;
  for (uint64_t i = 0; i < 5; ++i) {
    Txn w = MakeTxn(10 + i);
    ASSERT_TRUE(vs.Write(TableId(1), 42, w, i == 0 ? std::make_optional(Payload(0)) : std::nullopt,
                         Payload(static_cast<uint8_t>(i)), false)
                    .ok());
    w.commit_ts = 100 + i;
    vs.Commit(w);
  }
  const size_t before = vs.OverheadBytes();
  vs.Gc(/*min_active=*/1000);
  EXPECT_LT(vs.OverheadBytes(), before);
  EXPECT_EQ(vs.ChainCount(), 0u);  // Fully mirrored by the page.
  EXPECT_EQ(vs.OverheadBytes(), 0u);
}

TEST(VersionStore, GcKeepsVersionsForActiveSnapshots) {
  VersionStore vs;
  Txn w = MakeTxn(10);
  ASSERT_TRUE(vs.Write(TableId(1), 42, w, Payload(1), Payload(2), false).ok());
  w.commit_ts = 20;
  vs.Commit(w);
  vs.Gc(/*min_active=*/15);  // A snapshot at 15 still needs the pre-image.
  auto view = vs.Read(TableId(1), 42, 15, TxnId(15));
  EXPECT_EQ(view.source, VersionStore::ReadView::Source::kChain);
  EXPECT_EQ((*view.payload)[0], 1);
}

TEST(VersionStore, RangeResolution) {
  VersionStore vs;
  Txn w = MakeTxn(10);
  ASSERT_TRUE(vs.Write(TableId(1), 5, w, Payload(1), std::nullopt, true).ok());
  ASSERT_TRUE(vs.Write(TableId(1), 7, w, std::nullopt, Payload(2), false).ok());
  ASSERT_TRUE(vs.Write(TableId(2), 6, w, std::nullopt, Payload(3), false).ok());
  w.commit_ts = 20;
  vs.Commit(w);
  int seen = 0;
  vs.ForEachResolvedInRange(TableId(1), 0, 10, 25, TxnId(25),
                            [&](Key k, const VersionStore::ReadView& view) {
                              ++seen;
                              if (k == 5) {
                                EXPECT_EQ(view.source,
                                          VersionStore::ReadView::Source::kDeleted);
                              }
                            });
  EXPECT_EQ(seen, 2);  // Table 2's chain not visited.
}

// -------------------------------------------------------------- LogManager

struct LogRig {
  hw::Network network;
  hw::Disk disk{DiskId(0), NodeId(0), hw::DiskSpec::Hdd(), "wal"};
  hw::Disk helper_disk{DiskId(1), NodeId(1), hw::DiskSpec::Hdd(), "helper"};
  LogManager log{NodeId(0), &disk, &network};

  LogRig() {
    network.AddNode(NodeId(0));
    network.AddNode(NodeId(1));
  }
};

LogRecord MakeRecord(LogRecordType type, Key key = 1) {
  LogRecord r;
  r.type = type;
  r.txn = TxnId(1);
  r.table = TableId(1);
  r.partition = PartitionId(1);
  r.key = key;
  r.after_image = {1, 2, 3};
  return r;
}

TEST(LogManager, AppendsAssignLsnsAndTakeTime) {
  LogRig rig;
  const SimTime d1 = rig.log.Append(0, MakeRecord(LogRecordType::kInsert));
  const SimTime d2 = rig.log.Append(d1, MakeRecord(LogRecordType::kCommit));
  EXPECT_GT(d1, 0);
  EXPECT_GT(d2, d1);
  ASSERT_EQ(rig.log.records().size(), 2u);
  EXPECT_EQ(rig.log.records()[0].lsn + 1, rig.log.records()[1].lsn);
  EXPECT_GT(rig.log.bytes_written(), 0);
}

TEST(LogManager, HelperShipsOverNetwork) {
  LogRig rig;
  rig.log.AttachHelper(NodeId(1), &rig.helper_disk);
  EXPECT_TRUE(rig.log.HasHelper());
  rig.log.Append(0, MakeRecord(LogRecordType::kInsert));
  EXPECT_GT(rig.network.messages_sent(), 0);
  EXPECT_EQ(rig.disk.bytes_transferred(), 0);   // Local WAL disk untouched.
  EXPECT_GT(rig.helper_disk.bytes_transferred(), 0);
  rig.log.DetachHelper(500);
  rig.log.Append(1000, MakeRecord(LogRecordType::kInsert));
  EXPECT_GT(rig.disk.bytes_transferred(), 0);
}

// Regression for the mid-shipping attach/detach transition: records
// appended while a helper is attached are durable only on the helper's
// disk. A graceful detach must read that tail back and re-append it
// locally (costing real simulated time) before dropping the redirect —
// otherwise powering the helper off silently discards acknowledged
// commits.
TEST(LogManager, GracefulDetachRelocalizesShippedTail) {
  LogRig rig;
  rig.log.AttachHelper(NodeId(1), &rig.helper_disk);
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    t = rig.log.Append(t, MakeRecord(LogRecordType::kInsert, i));
  }
  const int64_t held = rig.log.helper_held_bytes();
  EXPECT_GT(held, 0);
  EXPECT_EQ(rig.disk.bytes_transferred(), 0);

  // Detach while the last append's durability time is still in the
  // future ("append in flight"): the held tail covers it regardless.
  const SimTime detach_at = t / 2;
  const SimTime durable_at = rig.log.DetachHelper(detach_at);
  EXPECT_FALSE(rig.log.HasHelper());
  EXPECT_EQ(rig.log.helper_held_bytes(), 0);
  // Re-localization charged: helper read + network hop + local append.
  EXPECT_GT(durable_at, detach_at);
  EXPECT_GE(rig.disk.bytes_transferred(), held);
  // The in-memory record stream is intact for later redo.
  EXPECT_EQ(rig.log.records().size(), 10u);

  // After detach, replay reads come from the local disk again.
  const int64_t local_before = rig.disk.bytes_transferred();
  rig.log.ChargeReplayRead(durable_at, 1024);
  EXPECT_GT(rig.disk.bytes_transferred(), local_before);
}

// A crashed helper takes the shipped tail's only durable copy with it:
// DetachHelperLost must re-force the tail from the in-memory log buffer
// to the local disk immediately.
TEST(LogManager, LostHelperReforcesTailLocally) {
  LogRig rig;
  rig.log.AttachHelper(NodeId(1), &rig.helper_disk);
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    t = rig.log.Append(t, MakeRecord(LogRecordType::kInsert, i));
  }
  const int64_t held = rig.log.helper_held_bytes();
  ASSERT_GT(held, 0);
  const int64_t helper_messages = rig.network.messages_sent();

  const SimTime durable_at = rig.log.DetachHelperLost(t);
  EXPECT_FALSE(rig.log.HasHelper());
  EXPECT_GT(durable_at, t);
  // Re-force is local-only: the helper (and the network path to it) is gone.
  EXPECT_GE(rig.disk.bytes_transferred(), held);
  EXPECT_EQ(rig.network.messages_sent(), helper_messages);
  EXPECT_EQ(rig.log.records().size(), 5u);

  // Re-attach starts a fresh held-tail epoch: only post-attach appends
  // count against the new helper.
  rig.log.AttachHelper(NodeId(1), &rig.helper_disk);
  EXPECT_EQ(rig.log.helper_held_bytes(), 0);
  rig.log.Append(durable_at, MakeRecord(LogRecordType::kInsert, 99));
  EXPECT_GT(rig.log.helper_held_bytes(), 0);
  EXPECT_LT(rig.log.helper_held_bytes(), held);
}

TEST(LogManager, TailAndTruncate) {
  LogRig rig;
  for (int i = 0; i < 5; ++i) {
    rig.log.Append(i, MakeRecord(LogRecordType::kInsert, i));
  }
  EXPECT_EQ(rig.log.Tail(2).size(), 3u);
  rig.log.TruncateUpTo(3);
  EXPECT_EQ(rig.log.records().size(), 2u);
  EXPECT_EQ(rig.log.Tail(0).size(), 2u);
}

TEST(LogManager, TailAfterHonorsLastCheckpoint) {
  LogRig rig;
  rig.log.Append(0, MakeRecord(LogRecordType::kInsert, 1));   // lsn 1
  rig.log.Append(1, MakeRecord(LogRecordType::kInsert, 2));   // lsn 2
  rig.log.Append(2, MakeRecord(LogRecordType::kCheckpoint));  // lsn 3
  rig.log.Append(3, MakeRecord(LogRecordType::kUpdate, 2));   // lsn 4
  rig.log.Append(4, MakeRecord(LogRecordType::kDelete, 1));   // lsn 5
  // Another partition's record is not part of partition 1's redo tail.
  LogRecord other = MakeRecord(LogRecordType::kInsert, 9);
  other.partition = PartitionId(2);
  rig.log.Append(5, other);  // lsn 6

  EXPECT_EQ(rig.log.LastCheckpointLsn(PartitionId(1)), 3u);
  const auto tail = rig.log.TailAfter(PartitionId(1));
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].type, LogRecordType::kUpdate);
  EXPECT_EQ(tail[1].type, LogRecordType::kDelete);

  // A never-checkpointed partition replays from the log's beginning.
  EXPECT_EQ(rig.log.LastCheckpointLsn(PartitionId(2)), 0u);
  ASSERT_EQ(rig.log.TailAfter(PartitionId(2)).size(), 1u);
  EXPECT_EQ(rig.log.TailAfter(PartitionId(2))[0].key, 9u);
}

TEST(LogManager, TailAfterEmptyWhenNothingFollowsCheckpoint) {
  LogRig rig;
  // Empty log: empty tail.
  EXPECT_TRUE(rig.log.TailAfter(PartitionId(1)).empty());
  // Everything before the checkpoint is already durable in the moved
  // segment (§4.3): the tail right after a move completes is empty.
  rig.log.Append(0, MakeRecord(LogRecordType::kInsert, 1));
  rig.log.Append(1, MakeRecord(LogRecordType::kCheckpoint));
  EXPECT_TRUE(rig.log.TailAfter(PartitionId(1)).empty());
}

TEST(LogManager, ChargeReplayReadCostsDiskTime) {
  LogRig rig;
  EXPECT_EQ(rig.log.ChargeReplayRead(42, 0), 42);
  const SimTime done = rig.log.ChargeReplayRead(0, 1 << 20);
  EXPECT_GT(done, 0);
  EXPECT_GT(rig.disk.bytes_transferred(), 0);
}

// ------------------------------------------------------ TransactionManager

TEST(TransactionManager, BeginAssignsMonotoneTimestamps) {
  TransactionManager tm;
  Txn* a = tm.Begin(0);
  Txn* b = tm.Begin(10);
  EXPECT_LT(a->begin_ts, b->begin_ts);
  EXPECT_EQ(tm.active_count(), 2u);
}

TEST(TransactionManager, CommitStampsAndCounts) {
  TransactionManager tm;
  Txn* t = tm.Begin(0);
  t->AdvanceTo(500);
  const Timestamp cts = tm.Commit(t);
  EXPECT_GT(cts, t->begin_ts);
  EXPECT_EQ(t->state, TxnState::kCommitted);
  EXPECT_EQ(tm.committed(), 1);
  tm.Release(t->id);
  EXPECT_EQ(tm.active_count(), 0u);
}

TEST(TransactionManager, MinActiveIgnoresFinished) {
  TransactionManager tm;
  Txn* a = tm.Begin(0);
  Txn* b = tm.Begin(0);
  const Timestamp a_ts = a->begin_ts;
  tm.Commit(a);
  EXPECT_GT(tm.MinActiveTs(), a_ts);
  EXPECT_EQ(tm.MinActiveTs(), b->begin_ts);
  tm.Commit(b);
  tm.Release(a->id);
  tm.Release(b->id);
}

TEST(TransactionManager, AbortReturnsUndo) {
  TransactionManager tm;
  Txn* t = tm.Begin(0);
  ASSERT_TRUE(tm.versions()
                  .Write(TableId(1), 9, *t, Payload(1), Payload(2), false)
                  .ok());
  auto undo = tm.Abort(t);
  EXPECT_EQ(undo.size(), 1u);
  EXPECT_EQ(tm.aborted(), 1);
}

TEST(TransactionManager, VacuumShrinksVersionStore) {
  TransactionManager tm;
  for (int i = 0; i < 3; ++i) {
    Txn* t = tm.Begin(0);
    ASSERT_TRUE(tm.versions()
                    .Write(TableId(1), 9, *t,
                           i == 0 ? std::make_optional(Payload(0)) : std::nullopt,
                           Payload(static_cast<uint8_t>(i)), false)
                    .ok());
    tm.Commit(t);
    tm.Release(t->id);
  }
  EXPECT_GT(tm.versions().OverheadBytes(), 0u);
  tm.Vacuum();
  EXPECT_EQ(tm.versions().OverheadBytes(), 0u);
}

TEST(Txn, ComponentAccounting) {
  Txn t = MakeTxn(1, 1000);
  t.AdvanceTo(1500);
  t.cpu_us = 100;
  t.disk_us = 200;
  EXPECT_EQ(t.Elapsed(), 500);
  EXPECT_EQ(t.OtherUs(), 200);
  t.AdvanceTo(1400);  // Monotone: no-op.
  EXPECT_EQ(t.now, 1500);
}

}  // namespace
}  // namespace wattdb::tx
