// Property sweep across (scheme × seed × fraction): online repartitioning
// must conserve every record of every table, keep the routing tree
// consistent, and leave all data readable — with a live workload running.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "partition/logical.h"
#include "partition/physical.h"
#include "partition/physiological.h"
#include "workload/client.h"
#include "workload/tpcc_loader.h"

namespace wattdb::partition {
namespace {

struct Param {
  const char* scheme;
  uint64_t seed;
  double fraction;
};

class MigrationPropertyTest : public ::testing::TestWithParam<Param> {};

std::unique_ptr<MigrationManagerBase> MakeScheme(cluster::Cluster* c,
                                                 const char* name) {
  MigrationConfig mc;
  mc.logical_batch_records = 512;
  if (std::string(name) == "physical") {
    return std::make_unique<PhysicalPartitioning>(c, mc);
  }
  if (std::string(name) == "logical") {
    return std::make_unique<LogicalPartitioning>(c, mc);
  }
  return std::make_unique<PhysiologicalPartitioning>(c, mc);
}

/// Rows per table, counted via the routing tree (so misrouted ranges or
/// lost segments show up as missing rows).
std::map<uint32_t, size_t> CountByTable(cluster::Cluster* c) {
  std::map<uint32_t, size_t> counts;
  for (TableId t : c->catalog().Tables()) {
    size_t n = 0;
    for (const auto& route : c->catalog().AllRoutes(t)) {
      catalog::Partition* p = c->catalog().GetPartition(route.primary);
      for (const auto& e : p->SegmentsInRange(route.range)) {
        storage::Segment* seg = c->segments().Get(e.segment);
        if (seg == nullptr) continue;
        const Key lo = std::max(route.range.lo, e.range.lo);
        const Key hi = std::min(route.range.hi, e.range.hi);
        n += seg->ScanRange(lo, hi,
                            [](const storage::Record&) { return true; });
      }
    }
    counts[t.value()] = n;
  }
  return counts;
}

TEST_P(MigrationPropertyTest, ConservesRecordsUnderLoad) {
  const Param param = GetParam();
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 5;
  cfg.initially_active = 2;
  cfg.buffer.capacity_pages = 1500;
  cfg.seed = param.seed;
  cluster::Cluster c(cfg);

  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.04;
  load.home_nodes = {NodeId(0), NodeId(1)};
  load.seed = param.seed;
  workload::TpccDatabase db(&c, load);
  ASSERT_TRUE(db.Load().ok());

  // Read-mostly workload runs throughout (OrderStatus/StockLevel mutate
  // nothing; Payment inserts history rows, NewOrder adds orders — so we
  // only check conservation on tables the mix does not touch: CUSTOMER,
  // STOCK, ITEM, WAREHOUSE, DISTRICT row *counts* stay fixed).
  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = 10;
  pool_cfg.think_time = 30 * kUsPerMs;
  pool_cfg.seed = param.seed;
  workload::ClientPool pool(&db, pool_cfg);
  pool.Start();
  c.StartSampling(nullptr);
  c.RunUntil(5 * kUsPerSec);

  const auto before = CountByTable(&c);

  auto scheme = MakeScheme(&c, param.scheme);
  cluster::Master master(&c, scheme.get());
  bool done = false;
  ASSERT_TRUE(master
                  .TriggerRebalance({NodeId(2), NodeId(3)}, param.fraction,
                                    [&]() { done = true; })
                  .ok());
  const SimTime deadline = c.Now() + 1200 * kUsPerSec;
  while (!done && c.Now() < deadline) {
    c.RunUntil(c.Now() + kUsPerSec);
  }
  pool.Stop();
  ASSERT_TRUE(done) << param.scheme << " did not finish";
  EXPECT_GT(pool.completed(), 100) << "workload must keep running";

  EXPECT_TRUE(c.catalog().CheckInvariants());
  const auto after = CountByTable(&c);
  for (TableId t : c.catalog().Tables()) {
    const auto* schema = c.catalog().GetSchema(t);
    // Fixed-cardinality tables must be conserved exactly.
    if (schema->name == "customer" || schema->name == "stock" ||
        schema->name == "item" || schema->name == "warehouse" ||
        schema->name == "district") {
      EXPECT_EQ(after.at(t.value()), before.at(t.value())) << schema->name;
    } else {
      // Growing tables must not lose rows (orders/new_order/order_line/
      // history only gain or are consumed by Delivery's new_order deletes).
      if (schema->name != "new_order") {
        EXPECT_GE(after.at(t.value()), before.at(t.value())) << schema->name;
      }
    }
  }
  // Spot-check readability through the two-pointer router.
  tx::Txn* r = c.BeginTxn(true);
  for (int64_t w = 1; w <= 2; ++w) {
    const Key key = workload::TpccKeys::Customer(w, 1, 1);
    auto [part, second] =
        c.RouteBoth(r, db.table(workload::TpccTable::kCustomer), key);
    ASSERT_NE(part, nullptr);
    storage::Record rec;
    Status s = c.node(part->owner())->Read(r, part, key, &rec);
    if (s.IsNotFound() && second != nullptr) {
      s = c.node(second->owner())->Read(r, second, key, &rec);
    }
    EXPECT_TRUE(s.ok()) << "customer (" << w << ",1,1) unreachable";
  }
  c.tm().Commit(r);
  c.tm().Release(r->id);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MigrationPropertyTest,
    ::testing::Values(Param{"physiological", 1, 0.5},
                      Param{"physiological", 2, 0.25},
                      Param{"physiological", 3, 0.75},
                      Param{"physical", 1, 0.5},
                      Param{"physical", 4, 0.33},
                      Param{"logical", 1, 0.5},
                      Param{"logical", 5, 0.25}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(info.param.scheme) + "_s" +
             std::to_string(info.param.seed) + "_f" +
             std::to_string(static_cast<int>(info.param.fraction * 100));
    });

}  // namespace
}  // namespace wattdb::partition
