// Tests for the chaos harness (src/chaos): the PR-blocking smoke tier over
// a FIXED seed list (the nightly soak explores fresh seeds; this list never
// changes, so a failure here is a regression, not flake), bit-identical
// replay of a seed, the acceptance check that the deliberately injected
// bug (--no-fencing) is caught deterministically, and a directed test of
// the partition/fencing path: a partitioned owner keeps committing, is
// deposed by promotion, stale routes are refused by the epoch check, the
// node reconnects, and no write is lost or doubly served.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "api/db.h"
#include "chaos/chaos.h"
#include "cluster/master.h"

namespace wattdb {
namespace {

std::string Joined(const std::vector<std::string>& violations) {
  std::string out;
  for (const auto& v : violations) out += "\n  " + v;
  return out;
}

// ------------------------------------------------------------- smoke tier

// The fixed smoke list. 40/44/47/92/127 are seeds that historically caught
// real engine bugs (stale-plan route steal, a heat move targeting a
// declared-dead partitioned node, a mid-move abort-undo restore landing on
// a segmentless partition) — they stay on the list as regression anchors.
constexpr uint64_t kSmokeSeeds[] = {1,  2,  3,  7,  19, 40,  44, 47,
                                    66, 92, 101, 127, 150, 173, 200};

TEST(ChaosSmoke, FixedSeedListPasses) {
  for (uint64_t seed : kSmokeSeeds) {
    chaos::ChaosConfig config;
    config.seed = seed;
    const chaos::ScenarioResult result = chaos::RunScenario(config);
    EXPECT_TRUE(result.passed)
        << "seed " << seed << " violated invariants (replay with "
        << "chaos_soak --seed=" << seed << "):" << Joined(result.violations);
    EXPECT_GT(result.committed_txns, 0u)
        << "seed " << seed << " committed nothing — the scenario is vacuous";
  }
}

TEST(ChaosSmoke, SameSeedReplaysBitIdentically) {
  chaos::ChaosConfig config;
  config.seed = 47;
  const chaos::ScenarioResult a = chaos::RunScenario(config);
  const chaos::ScenarioResult b = chaos::RunScenario(config);
  // ToJson covers the verdict, every violation, the whole fault/control
  // timeline, and all counters — identical JSON means identical runs.
  EXPECT_EQ(chaos::ToJson(a), chaos::ToJson(b));
  EXPECT_GT(a.crashes_injected, 0) << "seed 47 is expected to inject faults";
}

// The acceptance check for the harness itself: disabling epoch fencing is
// a deliberately injected ownership bug (a partitioned owner keeps serving
// routes a promotion sealed), and the invariant checker must catch it —
// deterministically, with a replayable seed.
TEST(ChaosSmoke, FencingOffIsCaughtDeterministically) {
  bool caught = false;
  for (uint64_t seed : {40u, 44u}) {
    chaos::ChaosConfig config;
    config.seed = seed;
    config.epoch_fencing = false;
    const chaos::ScenarioResult first = chaos::RunScenario(config);
    if (first.passed) continue;
    caught = true;
    bool lost_write = false;
    for (const auto& v : first.violations) {
      if (v.find("lost write") != std::string::npos ||
          v.find("wrong value") != std::string::npos) {
        lost_write = true;
      }
    }
    EXPECT_TRUE(lost_write)
        << "seed " << seed << " failed without fencing, but not with the "
        << "expected lost/stale write shape:" << Joined(first.violations);
    // The catch replays: same seed, same violations, same timeline.
    const chaos::ScenarioResult again = chaos::RunScenario(config);
    EXPECT_FALSE(again.passed);
    EXPECT_EQ(first.violations, again.violations);
    EXPECT_EQ(chaos::ToJson(first), chaos::ToJson(again));
  }
  EXPECT_TRUE(caught)
      << "neither known-failing seed caught the missing epoch check — the "
      << "invariant checker has lost its teeth";
}

// ------------------------------------------------------ history checking

// History mode on the PR-blocking tier: a subset of the fixed smoke list
// re-run with the per-operation recorder and the per-key linearizability
// checker armed. The subset is small because checking is superlinear in
// contention — the full list stays on the cheap final-state tier, the
// nightly soak covers breadth.
constexpr uint64_t kHistorySmokeSeeds[] = {1, 3, 7, 19, 40};

TEST(ChaosHistory, HistorySmokeSeedsPass) {
  for (uint64_t seed : kHistorySmokeSeeds) {
    chaos::ChaosConfig config;
    config.seed = seed;
    config.record_history = true;
    const chaos::ScenarioResult result = chaos::RunScenario(config);
    EXPECT_TRUE(result.passed)
        << "seed " << seed << " (replay with chaos_soak --seed=" << seed
        << " --history):" << Joined(result.violations);
    EXPECT_GT(result.history_ops, 0)
        << "seed " << seed << " recorded no operations — history mode is "
        << "vacuous";
    EXPECT_GT(result.history_keys_checked, 0);
  }
}

TEST(ChaosHistory, HistoryAndElasticityReplayBitIdentically) {
  chaos::ChaosConfig config;
  config.seed = 3;
  config.record_history = true;
  config.elasticity = true;
  const chaos::ScenarioResult a = chaos::RunScenario(config);
  const chaos::ScenarioResult b = chaos::RunScenario(config);
  EXPECT_EQ(chaos::ToJson(a), chaos::ToJson(b))
      << "history + elasticity must replay bit-identically from the seed";
  EXPECT_GT(a.elastic_actions, 0)
      << "seed 3 is expected to draw elastic actions";
  EXPECT_GT(a.history_ops, 0);
}

// The acceptance check for the *history* tier: with epoch fencing off, the
// linearizability checker catches anomalies the final-state audit cannot
// (a stale read served mid-handoff is invisible once later writes repair
// the key). Seeds 317 and 419 are soak-found anchors: both fail with a
// named stale-read anomaly, deterministically, and pass with fencing on.
TEST(ChaosHistory, FencingOffIsCaughtByHistoryChecker) {
  for (uint64_t seed : {317u, 419u}) {
    chaos::ChaosConfig config;
    config.seed = seed;
    config.record_history = true;
    config.epoch_fencing = false;
    const chaos::ScenarioResult first = chaos::RunScenario(config);
    ASSERT_FALSE(first.passed)
        << "seed " << seed << " no longer catches the missing epoch check";
    ASSERT_FALSE(first.history_violations.empty())
        << "seed " << seed << " failed, but not through the history "
        << "checker:" << Joined(first.violations);
    const chaos::HistoryViolation& v = first.history_violations.front();
    EXPECT_NE(v.anomaly.find("stale read"), std::string::npos)
        << "seed " << seed << ": expected a named stale-read anomaly, got: "
        << v.anomaly;
    EXPECT_FALSE(v.sub_history.empty())
        << "a violation must carry its minimal failing sub-history";
    // The sub-history ends at the offending read (healthy tail truncated).
    EXPECT_EQ(v.sub_history.back().key, v.key);

    // Deterministic: the same seed re-draws the same anomaly verbatim.
    const chaos::ScenarioResult again = chaos::RunScenario(config);
    ASSERT_FALSE(again.history_violations.empty());
    EXPECT_EQ(v.anomaly, again.history_violations.front().anomaly);
    EXPECT_EQ(first.violations, again.violations);

    // And the anomaly is the injected bug's, not the harness's: fencing
    // back on, the identical schedule passes the same checker.
    chaos::ChaosConfig fenced = config;
    fenced.epoch_fencing = true;
    const chaos::ScenarioResult clean = chaos::RunScenario(fenced);
    EXPECT_TRUE(clean.passed)
        << "seed " << seed << " fails even with fencing on:"
        << Joined(clean.violations);
  }
}

// ------------------------------------------- directed partition + fencing

/// Same master policy as the replica tests: 1s control ticks, replica
/// maintenance + failure detection on, elasticity off, auto-heal off (the
/// test owns the heal), and a long cold-drop clock so the standby survives
/// the failover window.
DbOptions FencingOptions() {
  cluster::MasterPolicy mp;
  mp.check_period = kUsPerSec;
  mp.stats_window = kUsPerSec;
  mp.enable_scale_out = false;
  mp.enable_scale_in = false;
  mp.recovery.auto_heal = false;
  mp.replica.enabled = true;
  mp.replica.replicas_per_segment = 1;
  mp.replica.heat_threshold = 20.0;
  mp.replica.max_replicated_segments = 2;
  mp.replica.max_lag_records = 64;
  mp.replica.drop_cold_after = 120 * kUsPerSec;
  return DbOptions()
      .WithNodes(4)
      .WithActiveNodes(3)
      .WithoutTpccLoad()
      .WithMasterLoop(mp);
}

int CountEvents(Db& db, cluster::ControlEventType type) {
  int n = 0;
  for (const auto& e : db.control_events()) {
    if (e.type == type) ++n;
  }
  return n;
}

NodeId OwnerOf(Db& db, TableId table, Key key) {
  auto e = db.cluster().catalog().Route(table, key);
  if (!e.has_value()) return NodeId::Invalid();
  catalog::Partition* p = db.cluster().catalog().GetPartition(e->primary);
  return p == nullptr ? NodeId::Invalid() : p->owner();
}

// A fenced route entry (epoch bumped past the owner's claim token — exactly
// what promotion stamps before reading the deposed owner's final tail) must
// refuse BOTH reads and writes with Unavailable and count the refusal;
// healing the fence (the owner reclaims under its token, as a full redo
// does) makes the same route serve again.
TEST(PartitionFencing, FencedRouteRefusesUntilReclaimed) {
  auto opened = Db::Open(FencingOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session.Put(*table, 600, std::vector<uint8_t>(16, 0xA0)).ok());

  catalog::GlobalPartitionTable& cat = db.cluster().catalog();
  const auto entry = cat.Route(*table, 600);
  ASSERT_TRUE(entry.has_value());
  catalog::Partition* owner = cat.GetPartition(entry->primary);
  ASSERT_NE(owner, nullptr);
  const uint64_t claim_token = owner->route_epoch();

  const uint64_t fence = cat.FenceRange(*table, {512, 1024});
  ASSERT_GT(fence, claim_token);
  const uint64_t refusals_before = db.cluster().stale_route_refusals();
  EXPECT_TRUE(
      session.Put(*table, 600, std::vector<uint8_t>(16, 0xB0)).IsUnavailable())
      << "a write served through a sealed route defeats the fence";
  EXPECT_TRUE(session.Get(*table, 600).status().IsUnavailable())
      << "a read served through a sealed route defeats the fence";
  EXPECT_GT(db.cluster().stale_route_refusals(), refusals_before)
      << "the epoch check never fired";

  // The owner reclaims under the token it last held the range at — the
  // orphaned-fence restamp (no promotion ever flipped) heals the route.
  ASSERT_TRUE(
      cat.ReclaimRange(*table, {512, 1024}, owner->id(), claim_token).ok());
  StatusOr<storage::Record> rec = session.Get(*table, 600);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->payload, std::vector<uint8_t>(16, 0xA0))
      << "the fenced write must not have landed";
  EXPECT_TRUE(session.Put(*table, 600, std::vector<uint8_t>(16, 0xC0)).ok());
  EXPECT_TRUE(cat.CheckInvariants());
}

// The full deposed-owner arc: a node partitioned from the master keeps
// committing (the data plane is alive — only the control plane lost it),
// the master declares it dead and promotes its caught-up standby, the
// flipped route serves writes at the new owner, and after the partition
// heals the rejoining node drops its stale copy instead of serving it.
// Ground truth is tracked with the chaos payload format so the chaos
// invariant checker itself can audit the end state: nothing lost, nothing
// doubly served, no resurrections.
TEST(PartitionFencing, PartitionedOwnerDeposedThenRejoinsClean) {
  auto opened = Db::Open(FencingOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());

  // PartitionNode argument screens: the master cannot be partitioned from
  // itself, a powered-down node has no link to cut, and cutting the same
  // link twice is reported, not double-counted.
  EXPECT_TRUE(db.PartitionNode(NodeId(0)).IsInvalidArgument());
  EXPECT_TRUE(db.PartitionNode(NodeId(3)).IsFailedPrecondition())
      << "node 3 is a standby; partitioning it should be refused";
  EXPECT_TRUE(db.HealPartition(NodeId(1)).IsNotFound())
      << "healing an intact link should be refused";

  chaos::GroundTruth truth;
  uint64_t next_seq = 1;
  std::vector<Key> keys;
  for (Key k = 520; k < 584; ++k) keys.push_back(k);
  auto put = [&](Key k) {
    const uint64_t seq = next_seq++;
    const Status s =
        session.Put(*table, k, chaos::EncodePayload(k, seq));
    if (s.ok()) {
      truth.committed[k] = seq;
      ++truth.committed_txns;
    } else {
      EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
    }
    return s.ok();
  };
  for (Key k : keys) ASSERT_TRUE(put(k));

  // Hammer node 1's segment until its standby is caught up and serving.
  const SimTime t0 = db.Now();
  while (db.replicas().replicas_caught_up() == 0 &&
         db.Now() < t0 + 30 * kUsPerSec) {
    for (int i = 0; i < 50; ++i) {
      (void)session.Get(*table, 520 + (i % 64));
    }
    db.RunFor(kUsPerSec);
  }
  ASSERT_GE(db.replicas().replicas_caught_up(), 1) << "no standby caught up";
  ASSERT_FALSE(db.replicas().replicas().empty());
  const NodeId standby_host = db.replicas().replicas().front()->host;
  ASSERT_NE(standby_host, NodeId(1));

  // Cut the control link. The owner is alive and still commits: these are
  // exactly the writes a promotion must not strand.
  ASSERT_TRUE(db.PartitionNode(NodeId(1)).ok());
  EXPECT_TRUE(db.PartitionNode(NodeId(1)).IsAlreadyExists());
  EXPECT_TRUE(db.cluster().IsPartitioned(NodeId(1)));
  for (Key k : keys) {
    EXPECT_TRUE(put(k)) << "partitioned owner refused a write pre-fence";
  }

  // Keep writing while heartbeats lapse, the master declares the node
  // dead, and promotion fences + flips. A put either commits (and the new
  // owner must serve it) or is refused Unavailable by the epoch check
  // mid-handoff (and must never surface).
  const SimTime w0 = db.Now();
  while (CountEvents(db, cluster::ControlEventType::kReplicaPromoted) == 0 &&
         db.Now() < w0 + 30 * kUsPerSec) {
    for (Key k : keys) (void)put(k);
    db.RunFor(kUsPerSec / 4);
  }
  ASSERT_GE(db.replicas().replicas_promoted(), 1)
      << "partitioned owner was never deposed";
  EXPECT_EQ(OwnerOf(db, *table, 520), standby_host);
  EXPECT_GE(CountEvents(db, cluster::ControlEventType::kNodeDeclaredDead), 1);

  // Post-flip writes land on the new owner.
  for (Key k : keys) {
    EXPECT_TRUE(put(k)) << "write refused after the flip settled";
  }

  // Reconnect. The rejoining node must drop its stale copy of the promoted
  // range (serving it would doubly serve every post-flip write) and the
  // link state machine must agree the partition is gone.
  ASSERT_TRUE(db.HealPartition(NodeId(1)).ok());
  EXPECT_FALSE(db.cluster().IsPartitioned(NodeId(1)));
  EXPECT_TRUE(db.HealPartition(NodeId(1)).IsNotFound());
  db.RunFor(5 * kUsPerSec);

  // Final audit with the chaos invariant checker: routes disjoint and
  // live, no orphaned fence, every committed (key, seq) present exactly
  // once with its exact payload, nothing resurrected.
  const std::vector<std::string> violations =
      chaos::CheckInvariants(db, *table, 1536, truth);
  EXPECT_TRUE(violations.empty()) << Joined(violations);
}

// The race satellite: the partition heals AFTER the master declared the
// owner dead and started promotion (the fence is stamped, the flip is
// scheduled behind the standby's final catch-up) but possibly BEFORE the
// flip lands. Two legal outcomes — the flip wins and the rejoining owner
// is deposed, or the owner's reclaim wins and the conditional flip is
// refused — and in both the audit must hold: nothing lost, nothing doubly
// served, no route left permanently fenced.
TEST(PartitionFencing, HealRacingPromotionFlipSettlesClean) {
  auto opened = Db::Open(FencingOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());

  chaos::GroundTruth truth;
  uint64_t next_seq = 1;
  std::vector<Key> keys;
  for (Key k = 520; k < 584; ++k) keys.push_back(k);
  auto put = [&](Key k) {
    const uint64_t seq = next_seq++;
    const Status s = session.Put(*table, k, chaos::EncodePayload(k, seq));
    if (s.ok()) {
      truth.committed[k] = seq;
      ++truth.committed_txns;
    } else {
      EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
    }
    return s.ok();
  };
  for (Key k : keys) ASSERT_TRUE(put(k));

  // Warm a standby of node 1's segment, as in the deposed-owner test.
  const SimTime t0 = db.Now();
  while (db.replicas().replicas_caught_up() == 0 &&
         db.Now() < t0 + 30 * kUsPerSec) {
    for (int i = 0; i < 50; ++i) {
      (void)session.Get(*table, 520 + (i % 64));
    }
    db.RunFor(kUsPerSec);
  }
  ASSERT_GE(db.replicas().replicas_caught_up(), 1) << "no standby caught up";

  // Cut the control link and wait for the death declaration — promotion
  // starts here (fence stamped, flip pending) — in small steps so the heal
  // lands inside the fence-to-flip window rather than after it.
  ASSERT_TRUE(db.PartitionNode(NodeId(1)).ok());
  const SimTime w0 = db.Now();
  while (CountEvents(db, cluster::ControlEventType::kNodeDeclaredDead) == 0 &&
         db.Now() < w0 + 30 * kUsPerSec) {
    for (Key k : keys) (void)put(k);
    db.RunFor(kUsPerSec / 8);
  }
  ASSERT_GE(CountEvents(db, cluster::ControlEventType::kNodeDeclaredDead), 1)
      << "partitioned owner was never declared dead";
  const int promoted_at_heal =
      CountEvents(db, cluster::ControlEventType::kReplicaPromoted);

  // Heal immediately: the owner reclaims while the flip may still be in
  // flight. Keep the writers hammering through the race.
  ASSERT_TRUE(db.HealPartition(NodeId(1)).ok());
  for (int step = 0; step < 40; ++step) {
    for (Key k : keys) (void)put(k);
    db.RunFor(kUsPerSec / 4);
  }
  db.RunFor(10 * kUsPerSec);

  // Whichever side won, the routes must serve again...
  bool served = false;
  for (int attempt = 0; attempt < 20 && !served; ++attempt) {
    served = put(keys[0]);
    if (!served) db.RunFor(kUsPerSec);
  }
  EXPECT_TRUE(served) << "route still refusing writes long after the heal "
                      << "settled — a fence was left orphaned";
  // ...and the audit must hold under either interleaving. (Whether the
  // flip landed is the seedless race's outcome, not an assertion target:
  // promoted_at_heal only documents where the race began.)
  (void)promoted_at_heal;
  const std::vector<std::string> violations =
      chaos::CheckInvariants(db, *table, 1536, truth);
  EXPECT_TRUE(violations.empty()) << Joined(violations);
}

}  // namespace
}  // namespace wattdb
