// Unit + property tests for the storage engine: slotted pages, segments,
// the segment directory, and the buffer manager.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "hw/network.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/segment.h"
#include "storage/segment_manager.h"

namespace wattdb::storage {
namespace {

std::vector<uint8_t> Bytes(size_t n, uint8_t fill = 0xAB) {
  return std::vector<uint8_t>(n, fill);
}

// ------------------------------------------------------------------- Page

TEST(Page, InsertRead) {
  Page p;
  const auto body = Bytes(100, 1);
  auto slot = p.Insert(body.data(), body.size());
  ASSERT_TRUE(slot.ok());
  auto read = p.Read(slot.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().second, 100u);
  EXPECT_EQ(read.value().first[0], 1);
  EXPECT_EQ(p.record_count(), 1);
  EXPECT_TRUE(p.CheckInvariants());
}

TEST(Page, RejectsZeroAndOversize) {
  Page p;
  uint8_t b = 0;
  EXPECT_TRUE(p.Insert(&b, 0).status().IsInvalidArgument());
  const auto huge = Bytes(kPageSize);
  EXPECT_FALSE(p.Insert(huge.data(), huge.size()).ok());
}

TEST(Page, FillsUntilResourceExhausted) {
  Page p;
  const auto body = Bytes(100);
  int inserted = 0;
  while (p.Insert(body.data(), body.size()).ok()) ++inserted;
  // ~8160 usable / 108 per record.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 80);
  EXPECT_TRUE(p.CheckInvariants());
}

TEST(Page, DeleteTombstonesAndReusesSlot) {
  Page p;
  const auto body = Bytes(64);
  auto s0 = p.Insert(body.data(), body.size());
  auto s1 = p.Insert(body.data(), body.size());
  ASSERT_TRUE(s0.ok() && s1.ok());
  ASSERT_TRUE(p.Delete(s0.value()).ok());
  EXPECT_TRUE(p.Read(s0.value()).status().IsNotFound());
  EXPECT_EQ(p.record_count(), 1);
  // New insert reuses the tombstoned slot number.
  auto s2 = p.Insert(body.data(), body.size());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value(), s0.value());
  EXPECT_TRUE(p.CheckInvariants());
}

TEST(Page, DeleteInvalidSlot) {
  Page p;
  EXPECT_TRUE(p.Delete(3).IsNotFound());
}

TEST(Page, UpdateInPlaceAndShrink) {
  Page p;
  const auto body = Bytes(100, 7);
  auto slot = p.Insert(body.data(), body.size());
  ASSERT_TRUE(slot.ok());
  const auto smaller = Bytes(40, 9);
  ASSERT_TRUE(p.Update(slot.value(), smaller.data(), smaller.size()).ok());
  auto read = p.Read(slot.value());
  EXPECT_EQ(read.value().second, 40u);
  EXPECT_EQ(read.value().first[0], 9);
  EXPECT_TRUE(p.CheckInvariants());
}

TEST(Page, UpdateGrowRelocatesWithinPage) {
  Page p;
  const auto body = Bytes(100, 7);
  auto slot = p.Insert(body.data(), body.size());
  const auto bigger = Bytes(300, 5);
  ASSERT_TRUE(p.Update(slot.value(), bigger.data(), bigger.size()).ok());
  auto read = p.Read(slot.value());
  EXPECT_EQ(read.value().second, 300u);
  EXPECT_EQ(read.value().first[0], 5);
  EXPECT_TRUE(p.CheckInvariants());
}

TEST(Page, CompactionReclaimsDeletedSpace) {
  Page p;
  const auto body = Bytes(400);
  std::vector<uint16_t> slots;
  while (true) {
    auto s = p.Insert(body.data(), body.size());
    if (!s.ok()) break;
    slots.push_back(s.value());
  }
  // Delete every other record; a fresh large insert must succeed via
  // compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(p.Delete(slots[i]).ok());
  }
  const auto big = Bytes(500, 3);
  EXPECT_TRUE(p.Insert(big.data(), big.size()).ok());
  EXPECT_TRUE(p.CheckInvariants());
  // Survivors unharmed.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_TRUE(p.Read(slots[i]).ok());
  }
}

class PagePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PagePropertyTest, RandomOpsMatchModel) {
  Page p;
  Rng rng(GetParam());
  std::map<uint16_t, std::vector<uint8_t>> model;
  for (int i = 0; i < 2000; ++i) {
    const int op = static_cast<int>(rng.UniformInt(0, 2));
    if (op == 0) {
      auto body = Bytes(static_cast<size_t>(rng.UniformInt(8, 600)),
                        static_cast<uint8_t>(rng.Next()));
      auto slot = p.Insert(body.data(), body.size());
      if (slot.ok()) model[slot.value()] = body;
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, model.size() - 1));
      if (op == 1) {
        auto body = Bytes(static_cast<size_t>(rng.UniformInt(8, 600)),
                          static_cast<uint8_t>(rng.Next()));
        if (p.Update(it->first, body.data(), body.size()).ok()) {
          it->second = body;
        }
      } else {
        ASSERT_TRUE(p.Delete(it->first).ok());
        model.erase(it);
      }
    }
    ASSERT_TRUE(p.CheckInvariants());
  }
  EXPECT_EQ(p.record_count(), model.size());
  for (const auto& [slot, body] : model) {
    auto read = p.Read(slot);
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(read.value().second, body.size());
    EXPECT_EQ(0, memcmp(read.value().first, body.data(), body.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagePropertyTest,
                         ::testing::Values(1, 2, 3, 44, 5555));

// ---------------------------------------------------------------- Segment

TEST(Segment, InsertReadUpdateDelete) {
  Segment seg(SegmentId(1), NodeId(0), DiskId(0));
  ASSERT_TRUE(seg.Insert(42, Bytes(50, 1)).ok());
  auto rec = seg.Read(42);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().key, 42u);
  EXPECT_EQ(rec.value().payload.size(), 50u);
  ASSERT_TRUE(seg.Update(42, Bytes(60, 2)).ok());
  EXPECT_EQ(seg.Read(42).value().payload[0], 2);
  ASSERT_TRUE(seg.Delete(42).ok());
  EXPECT_TRUE(seg.Read(42).status().IsNotFound());
  EXPECT_TRUE(seg.CheckInvariants());
}

TEST(Segment, RejectsDuplicates) {
  Segment seg(SegmentId(1), NodeId(0), DiskId(0));
  ASSERT_TRUE(seg.Insert(1, Bytes(10)).ok());
  EXPECT_TRUE(seg.Insert(1, Bytes(10)).status().IsAlreadyExists());
}

TEST(Segment, SpillsAcrossPages) {
  Segment seg(SegmentId(1), NodeId(0), DiskId(0));
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(seg.Insert(k, Bytes(100)).ok());
  }
  EXPECT_GT(seg.page_count(), 20u);
  EXPECT_EQ(seg.record_count(), 2000u);
  EXPECT_TRUE(seg.CheckInvariants());
}

TEST(Segment, ScanRangeOrdered) {
  Segment seg(SegmentId(1), NodeId(0), DiskId(0));
  for (Key k = 100; k > 0; --k) ASSERT_TRUE(seg.Insert(k, Bytes(20)).ok());
  Key prev = 0;
  size_t n = seg.ScanRange(20, 50, [&](const Record& r) {
    EXPECT_GT(r.key, prev);
    prev = r.key;
    return true;
  });
  EXPECT_EQ(n, 30u);
  EXPECT_EQ(seg.MinKey(), 1u);
  EXPECT_EQ(seg.MaxKey(), 100u);
}

TEST(Segment, UpdateGrowAcrossPages) {
  Segment seg(SegmentId(1), NodeId(0), DiskId(0));
  // Fill page 0 nearly full, then grow one record so it must relocate.
  for (Key k = 0; k < 70; ++k) ASSERT_TRUE(seg.Insert(k, Bytes(100)).ok());
  ASSERT_TRUE(seg.Update(0, Bytes(4000, 9)).ok());
  auto rec = seg.Read(0);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().payload.size(), 4000u);
  EXPECT_EQ(rec.value().payload[0], 9);
  EXPECT_TRUE(seg.CheckInvariants());
}

TEST(Segment, RelocateUpdatesPlacement) {
  Segment seg(SegmentId(1), NodeId(0), DiskId(0));
  seg.Relocate(NodeId(3), DiskId(9));
  EXPECT_EQ(seg.storage_node(), NodeId(3));
  EXPECT_EQ(seg.disk(), DiskId(9));
}

TEST(Segment, ByteAccounting) {
  Segment seg(SegmentId(1), NodeId(0), DiskId(0));
  ASSERT_TRUE(seg.Insert(1, Bytes(92)).ok());
  EXPECT_EQ(seg.LiveBytes(), 100u);  // 8-byte key prefix + payload.
  EXPECT_EQ(seg.DiskBytes(), kPageSize);
  EXPECT_GT(seg.IndexBytes(), 0u);
}

// ---------------------------------------------------------- SegmentManager

TEST(SegmentManager, CreateGetDrop) {
  SegmentManager mgr;
  Segment* a = mgr.Create(NodeId(0), DiskId(0));
  Segment* b = mgr.Create(NodeId(1), DiskId(3));
  ASSERT_NE(a, nullptr);
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(mgr.Get(a->id()), a);
  EXPECT_EQ(mgr.size(), 2u);
  // Save the id: Drop frees the segment `a` points at.
  const SegmentId a_id = a->id();
  ASSERT_TRUE(mgr.Drop(a_id).ok());
  EXPECT_EQ(mgr.Get(a_id), nullptr);
  EXPECT_TRUE(mgr.Drop(a_id).IsNotFound());
}

TEST(SegmentManager, SegmentsOnFiltersByNode) {
  SegmentManager mgr;
  mgr.Create(NodeId(0), DiskId(0));
  mgr.Create(NodeId(1), DiskId(3));
  Segment* c = mgr.Create(NodeId(0), DiskId(1));
  EXPECT_EQ(mgr.SegmentsOn(NodeId(0)).size(), 2u);
  EXPECT_EQ(mgr.SegmentsOn(NodeId(1)).size(), 1u);
  ASSERT_TRUE(mgr.Relocate(c->id(), NodeId(1), DiskId(4)).ok());
  EXPECT_EQ(mgr.SegmentsOn(NodeId(1)).size(), 2u);
}

// ------------------------------------------------------------ BufferManager

struct BufferRig {
  SegmentManager segments;
  hw::Network network;
  hw::Disk local_disk{DiskId(0), NodeId(0), hw::DiskSpec::Ssd(), "local"};
  hw::Disk remote_disk{DiskId(1), NodeId(1), hw::DiskSpec::Ssd(), "remote"};
  std::unique_ptr<BufferManager> buffer;

  explicit BufferRig(size_t capacity) {
    network.AddNode(NodeId(0));
    network.AddNode(NodeId(1));
    BufferSpec spec;
    spec.capacity_pages = capacity;
    buffer = std::make_unique<BufferManager>(
        NodeId(0), spec, &segments, &network, [this](DiskId d) {
          return d == DiskId(0) ? &local_disk : &remote_disk;
        });
  }
};

TEST(BufferManager, MissThenHit) {
  BufferRig rig(10);
  Segment* seg = rig.segments.Create(NodeId(0), DiskId(0));
  ASSERT_TRUE(seg->Insert(1, Bytes(10)).ok());
  auto miss = rig.buffer->FetchPage(0, seg->id(), 0, false);
  EXPECT_FALSE(miss.hit);
  EXPECT_GT(miss.disk_us, 0);
  auto hit = rig.buffer->FetchPage(miss.done, seg->id(), 0, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.disk_us, 0);
  EXPECT_LT(hit.done - miss.done, 100);
  EXPECT_EQ(rig.buffer->hits(), 1);
  EXPECT_EQ(rig.buffer->misses(), 1);
}

TEST(BufferManager, EvictsLruAndWritesBackDirty) {
  BufferRig rig(2);
  Segment* seg = rig.segments.Create(NodeId(0), DiskId(0));
  SimTime t = 0;
  t = rig.buffer->FetchPage(t, seg->id(), 0, true).done;   // Dirty.
  t = rig.buffer->FetchPage(t, seg->id(), 1, false).done;
  t = rig.buffer->FetchPage(t, seg->id(), 2, false).done;  // Evicts page 0.
  EXPECT_EQ(rig.buffer->dirty_writebacks(), 1);
  auto again = rig.buffer->FetchPage(t, seg->id(), 0, false);
  EXPECT_FALSE(again.hit);  // Was evicted.
  EXPECT_LE(rig.buffer->resident_pages(), 2u);
}

TEST(BufferManager, RemoteDiskPaysNetwork) {
  BufferRig rig(10);
  Segment* seg = rig.segments.Create(NodeId(1), DiskId(1));  // Remote bytes.
  auto acc = rig.buffer->FetchPage(0, seg->id(), 0, false);
  EXPECT_TRUE(acc.remote_disk);
  EXPECT_GT(acc.net_us, 0);
  EXPECT_GT(acc.disk_us, 0);
  // Much slower than a local SSD miss.
  BufferRig rig2(10);
  Segment* seg2 = rig2.segments.Create(NodeId(0), DiskId(0));
  auto local = rig2.buffer->FetchPage(0, seg2->id(), 0, false);
  EXPECT_GT(acc.done, local.done * 2);
}

TEST(BufferManager, RemoteMemoryTierAbsorbsEvictions) {
  BufferRig rig(2);
  rig.buffer->AttachRemoteTier(NodeId(1), 100);
  Segment* seg = rig.segments.Create(NodeId(0), DiskId(0));
  SimTime t = 0;
  t = rig.buffer->FetchPage(t, seg->id(), 0, false).done;
  t = rig.buffer->FetchPage(t, seg->id(), 1, false).done;
  t = rig.buffer->FetchPage(t, seg->id(), 2, false).done;  // Evicts 0 to tier.
  auto back = rig.buffer->FetchPage(t, seg->id(), 0, false);
  EXPECT_TRUE(back.remote_memory);
  EXPECT_EQ(back.disk_us, 0);  // No disk access: rDMA fetch.
  EXPECT_GT(back.net_us, 0);
  EXPECT_EQ(rig.buffer->remote_memory_hits(), 1);
  rig.buffer->DetachRemoteTier();
  EXPECT_FALSE(rig.buffer->HasRemoteTier());
}

TEST(BufferManager, InvalidateSegmentDropsFrames) {
  BufferRig rig(10);
  Segment* seg = rig.segments.Create(NodeId(0), DiskId(0));
  rig.buffer->FetchPage(0, seg->id(), 0, false);
  EXPECT_EQ(rig.buffer->resident_pages(), 1u);
  rig.buffer->InvalidateSegment(seg->id());
  EXPECT_EQ(rig.buffer->resident_pages(), 0u);
}

TEST(BufferManager, MaintenancePinsInflateLatch) {
  BufferRig rig(10);
  Segment* seg = rig.segments.Create(NodeId(0), DiskId(0));
  auto before = rig.buffer->FetchPage(0, seg->id(), 0, false);
  rig.buffer->AddMaintenancePins(2048);
  auto during = rig.buffer->FetchPage(before.done, seg->id(), 0, false);
  EXPECT_GT(during.latch_us, before.latch_us);
  rig.buffer->ReleaseMaintenancePins(2048);
  auto after = rig.buffer->FetchPage(during.done, seg->id(), 0, false);
  EXPECT_EQ(after.latch_us, before.latch_us);
}

}  // namespace
}  // namespace wattdb::storage
