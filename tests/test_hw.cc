// Unit tests for the hardware models: disks, network, power (§3.1).

#include <gtest/gtest.h>

#include "common/constants.h"
#include "hw/disk.h"
#include "hw/network.h"
#include "hw/node_hardware.h"
#include "hw/power.h"

namespace wattdb::hw {
namespace {

TEST(Disk, RandomAccessPaysPositioning) {
  Disk d(DiskId(0), NodeId(0), DiskSpec::Hdd(), "hdd");
  const SimTime done = d.AccessRandom(0, kPageSize);
  // ~8ms seek + 8KB/100MBps ~ 82us transfer.
  EXPECT_GT(done, 8000);
  EXPECT_LT(done, 8200);
  EXPECT_EQ(d.random_ops(), 1);
}

TEST(Disk, SsdMuchFasterThanHdd) {
  Disk ssd(DiskId(0), NodeId(0), DiskSpec::Ssd(), "ssd");
  Disk hdd(DiskId(1), NodeId(0), DiskSpec::Hdd(), "hdd");
  EXPECT_LT(ssd.AccessRandom(0, kPageSize) * 10,
            hdd.AccessRandom(0, kPageSize));
}

TEST(Disk, SequentialApproachesBandwidth) {
  Disk d(DiskId(0), NodeId(0), DiskSpec::Hdd(), "hdd");
  // 100 MB at 100 MB/s ~ 1 s (+ one positioning charge).
  const SimTime done = d.AccessSequential(0, 100'000'000);
  EXPECT_NEAR(static_cast<double>(done), 1e6, 2e4);
}

TEST(Disk, AppendHasNoSeek) {
  Disk d(DiskId(0), NodeId(0), DiskSpec::Hdd(), "hdd");
  const SimTime done = d.AccessAppend(0, 100);
  EXPECT_LT(done, 200);  // Controller overhead only, no 8ms seek.
}

TEST(Disk, QueueingAccumulates) {
  Disk d(DiskId(0), NodeId(0), DiskSpec::Ssd(), "ssd");
  const SimTime first = d.AccessRandom(0, kPageSize);
  const SimTime second = d.AccessRandom(0, kPageSize);
  EXPECT_GT(second, first);
}

TEST(Disk, PowerInterpolatesWithUtilization) {
  Disk d(DiskId(0), NodeId(0), DiskSpec::Hdd(), "hdd");
  EXPECT_DOUBLE_EQ(d.PowerIn(0, 1000), DiskSpec::Hdd().idle_watts);
  d.AccessSequential(0, 100'000'000);  // Busy ~1s.
  const double watts = d.PowerIn(0, kUsPerSec);
  EXPECT_GT(watts, DiskSpec::Hdd().idle_watts);
  EXPECT_LE(watts, DiskSpec::Hdd().active_watts + 1e-9);
}

TEST(Network, LocalTransferIsFree) {
  Network net;
  net.AddNode(NodeId(0));
  EXPECT_EQ(net.Transfer(100, NodeId(0), NodeId(0), 1 << 20), 100);
}

TEST(Network, TransferPaysLatencyAndBandwidth) {
  Network net;
  net.AddNode(NodeId(0));
  net.AddNode(NodeId(1));
  const SimTime done = net.Transfer(0, NodeId(0), NodeId(1), 125'000'000 / 8);
  // 1 Gbit/s: 15.6 MB ~ 125 ms on each hop + latency.
  EXPECT_GT(done, 2 * 125'000 / 2);
  EXPECT_GT(done, net.spec().message_latency_us);
}

TEST(Network, RoundTripCostsTwoMessages) {
  Network net;
  net.AddNode(NodeId(0));
  net.AddNode(NodeId(1));
  const SimTime rtt = net.RoundTrip(0, NodeId(0), NodeId(1), 64, 64);
  EXPECT_GE(rtt, 2 * net.spec().message_latency_us);
  EXPECT_EQ(net.messages_sent(), 2);
}

TEST(Network, ConcurrentSendersShareLink) {
  Network net;
  for (int i = 0; i < 3; ++i) net.AddNode(NodeId(i));
  const size_t big = 12'500'000;  // 100 ms of link time.
  const SimTime a = net.Transfer(0, NodeId(0), NodeId(1), big);
  const SimTime b = net.Transfer(0, NodeId(0), NodeId(2), big);
  // Same egress: the second transfer serializes behind the first.
  EXPECT_GE(b, a);
  // Different egress nodes run in parallel.
  Network net2;
  for (int i = 0; i < 3; ++i) net2.AddNode(NodeId(i));
  const SimTime c = net2.Transfer(0, NodeId(0), NodeId(2), big);
  const SimTime d = net2.Transfer(0, NodeId(1), NodeId(2), big);
  (void)c;
  // Receiver ingress still serializes them.
  EXPECT_GT(d, net2.TransmitTime(big));
}

TEST(Network, UtilizationTracksLoad) {
  Network net;
  net.AddNode(NodeId(0));
  net.AddNode(NodeId(1));
  net.Transfer(0, NodeId(0), NodeId(1), 12'500'000);  // 100ms of egress.
  EXPECT_NEAR(net.EgressUtilization(NodeId(0), 0, kUsPerSec), 0.1, 0.01);
  EXPECT_NEAR(net.IngressUtilization(NodeId(1), 0, 2 * kUsPerSec), 0.05, 0.01);
}

TEST(Power, PaperEnvelope) {
  PowerModel m;
  EXPECT_DOUBLE_EQ(m.NodeWatts(PowerState::kStandby, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(m.NodeWatts(PowerState::kActive, 0.0), 22.0);
  EXPECT_DOUBLE_EQ(m.NodeWatts(PowerState::kActive, 1.0), 26.0);
  EXPECT_DOUBLE_EQ(m.NodeWatts(PowerState::kActive, 0.5), 24.0);
  EXPECT_DOUBLE_EQ(m.SwitchWatts(), 20.0);
}

TEST(Power, MinimalClusterConfigMatchesPaper) {
  // §3.1: one active node + switch + 9 standby nodes ~ 65 W.
  PowerModel m;
  const double watts = m.NodeWatts(PowerState::kActive, 0.1) +
                       9 * m.NodeWatts(PowerState::kStandby, 0) +
                       m.SwitchWatts();
  EXPECT_NEAR(watts, 65.0, 3.0);
}

TEST(Power, FullClusterMatchesPaper) {
  // §3.1: all 10 nodes at full utilization ~ 260-280 W.
  PowerModel m;
  const double watts =
      10 * m.NodeWatts(PowerState::kActive, 1.0) + m.SwitchWatts();
  EXPECT_GE(watts, 260.0);
  EXPECT_LE(watts, 280.0);
}

TEST(Power, UtilizationClamped) {
  PowerModel m;
  EXPECT_DOUBLE_EQ(m.NodeWatts(PowerState::kActive, 2.0), 26.0);
  EXPECT_DOUBLE_EQ(m.NodeWatts(PowerState::kActive, -1.0), 22.0);
}

TEST(EnergyMeter, IntegratesWattSeconds) {
  EnergyMeter meter;
  meter.Accumulate(100.0, 0, kUsPerSec);      // 100 J.
  meter.Accumulate(50.0, kUsPerSec, 3 * kUsPerSec);  // +100 J.
  EXPECT_DOUBLE_EQ(meter.joules(), 200.0);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.joules(), 0.0);
}

TEST(EnergyMeter, IgnoresEmptyWindows) {
  EnergyMeter meter;
  meter.Accumulate(100.0, 10, 10);
  meter.Accumulate(100.0, 10, 5);
  EXPECT_DOUBLE_EQ(meter.joules(), 0.0);
}

TEST(NodeHardware, PaperNodeConfiguration) {
  NodeHardwareSpec spec;  // Defaults: Atom D510, 1 HDD + 2 SSD.
  NodeHardware hw(NodeId(3), spec, DiskId(9));
  EXPECT_EQ(hw.cpu().size(), 2);
  EXPECT_EQ(hw.num_disks(), 3u);
  EXPECT_EQ(hw.disk(0)->spec().kind, DiskKind::kHdd);
  EXPECT_EQ(hw.disk(1)->spec().kind, DiskKind::kSsd);
  EXPECT_EQ(hw.disk(2)->spec().kind, DiskKind::kSsd);
  EXPECT_EQ(hw.disk(0)->id(), DiskId(9));
  EXPECT_EQ(hw.disk(2)->id(), DiskId(11));
  EXPECT_EQ(hw.disk(1)->node(), NodeId(3));
}

TEST(NodeHardware, LeastLoadedDiskPrefersIdle) {
  NodeHardware hw(NodeId(0), NodeHardwareSpec{}, DiskId(0));
  hw.disk(1)->AccessRandom(0, kPageSize);
  Disk* pick = hw.LeastLoadedDisk(0);
  EXPECT_NE(pick, hw.disk(1));
}

TEST(NodeHardware, PowerFollowsState) {
  NodeHardware hw(NodeId(0), NodeHardwareSpec{}, DiskId(0));
  PowerModel m;
  hw.set_power_state(PowerState::kStandby);
  EXPECT_DOUBLE_EQ(hw.PowerIn(m, 0, 1000), 2.5);
  hw.set_power_state(PowerState::kActive);
  EXPECT_DOUBLE_EQ(hw.PowerIn(m, 0, 1000), 22.0);
}

}  // namespace
}  // namespace wattdb::hw
