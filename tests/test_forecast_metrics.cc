// Tests for the load forecaster (§3.4 proactive decisions) and the metrics
// module (time series + Fig. 7 breakdown).

#include <gtest/gtest.h>

#include "cluster/forecast.h"
#include "metrics/breakdown.h"
#include "metrics/time_series.h"

namespace wattdb {
namespace {

using cluster::LoadForecaster;

TEST(LoadForecaster, FlatSeriesForecastsFlat) {
  LoadForecaster f;
  for (int i = 0; i < 20; ++i) {
    f.Observe(i * kUsPerSec, 0.5);
  }
  EXPECT_NEAR(f.Forecast(30 * kUsPerSec), 0.5, 0.05);
  EXPECT_NEAR(f.trend_per_sec(), 0.0, 0.01);
}

TEST(LoadForecaster, RisingTrendExtrapolates) {
  LoadForecaster f;
  // +2% utilization per second.
  for (int i = 0; i < 30; ++i) {
    f.Observe(i * kUsPerSec, 0.1 + 0.02 * i);
  }
  const double now_level = f.level();
  const double later = f.Forecast(10 * kUsPerSec);
  EXPECT_GT(later, now_level + 0.1) << "forecast must ride the trend";
  EXPECT_GT(f.trend_per_sec(), 0.01);
}

TEST(LoadForecaster, ForecastClampsToUtilizationDomain) {
  LoadForecaster f;
  for (int i = 0; i < 30; ++i) {
    f.Observe(i * kUsPerSec, 0.05 * i);  // Steep rise past 1.0.
  }
  EXPECT_LE(f.Forecast(60 * kUsPerSec), 1.0);
}

TEST(LoadForecaster, FirstSampleIsLevel) {
  LoadForecaster f;
  f.Observe(0, 0.7);
  EXPECT_DOUBLE_EQ(f.level(), 0.7);
  EXPECT_DOUBLE_EQ(f.Forecast(kUsPerSec), 0.7);
}

TEST(LoadForecaster, DeclaredShiftRaisesForecast) {
  LoadForecaster f;
  for (int i = 0; i < 10; ++i) f.Observe(i * kUsPerSec, 0.2);
  // A user-declared surge 5 s ahead (§3.4: user-defined workload shifts).
  f.DeclareShift(9 * kUsPerSec + 5 * kUsPerSec, +0.5);
  EXPECT_NEAR(f.Forecast(2 * kUsPerSec), 0.2, 0.05);   // Before the shift.
  EXPECT_NEAR(f.Forecast(10 * kUsPerSec), 0.7, 0.05);  // After it.
}

TEST(LoadForecaster, PastShiftsAreConsumed) {
  LoadForecaster f;
  f.Observe(0, 0.2);
  f.DeclareShift(2 * kUsPerSec, +0.5);
  f.Observe(3 * kUsPerSec, 0.2);  // Shift instant has passed.
  EXPECT_NEAR(f.Forecast(kUsPerSec), 0.2, 0.05);
}

TEST(TimeSeries, BucketsRelativeToOrigin) {
  metrics::TimeSeries ts(10 * kUsPerSec);
  ts.SetOrigin(100 * kUsPerSec);
  ts.RecordCompletion(95 * kUsPerSec, 5000);   // Bucket -1.
  ts.RecordCompletion(105 * kUsPerSec, 15000); // Bucket 0.
  ASSERT_EQ(ts.buckets().size(), 2u);
  EXPECT_EQ(ts.buckets().begin()->first, -1);
  EXPECT_EQ(ts.buckets().rbegin()->first, 0);
  EXPECT_DOUBLE_EQ(ts.buckets().rbegin()->second.AvgLatencyMs(), 15.0);
}

TEST(TimeSeries, PowerSplitsAcrossBuckets) {
  metrics::TimeSeries ts(10 * kUsPerSec);
  // 100 W over [5 s, 25 s): 5 s in bucket 0, 10 s in bucket 1, 5 s in 2.
  ts.RecordPower(5 * kUsPerSec, 25 * kUsPerSec, 100.0);
  ASSERT_EQ(ts.buckets().size(), 3u);
  const auto& b0 = ts.buckets().at(0);
  const auto& b1 = ts.buckets().at(1);
  EXPECT_NEAR(b0.joules, 500.0, 1.0);
  EXPECT_NEAR(b1.joules, 1000.0, 1.0);
  EXPECT_NEAR(b1.watts, 100.0, 0.5);  // Fully covered bucket.
}

TEST(TimeSeries, QpsAndJoulesPerQuery) {
  metrics::TimeSeries ts(kUsPerSec);
  for (int i = 0; i < 50; ++i) ts.RecordCompletion(500000, 2000);
  ts.RecordPower(0, kUsPerSec, 80.0);
  const auto& b = ts.buckets().at(0);
  EXPECT_DOUBLE_EQ(b.Qps(1.0), 50.0);
  EXPECT_NEAR(b.JoulesPerQuery(), 80.0 / 50.0, 0.01);
}

TEST(TimeSeries, CsvAndTableEmission) {
  metrics::TimeSeries ts(kUsPerSec);
  ts.RecordCompletion(100, 1000);
  const std::string csv = ts.ToCsv();
  EXPECT_NE(csv.find("t_sec,qps,avg_ms,watts,j_per_query"), std::string::npos);
  const std::string table = ts.ToTable("demo");
  EXPECT_NE(table.find("demo"), std::string::npos);
}

TEST(SideBySide, MergesSeriesColumns) {
  metrics::TimeSeries a(kUsPerSec), b(kUsPerSec);
  a.RecordCompletion(500000, 1000);
  b.RecordCompletion(1500000, 1000);
  const std::string out =
      metrics::SideBySide({"a", "b"}, {&a, &b}, "qps", 1.0);
  // Two bucket rows, both labels in the header.
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("b"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(TimeBreakdown, AccumulatesTxnComponents) {
  metrics::TimeBreakdown bd;
  tx::Txn t;
  t.start_time = 0;
  t.now = 10000;
  t.log_us = 1000;
  t.latch_us = 500;
  t.lock_wait_us = 1500;
  t.net_us = 2000;
  t.disk_us = 3000;
  t.cpu_us = 1000;
  bd.AddTxn(t);
  EXPECT_EQ(bd.queries(), 1);
  EXPECT_DOUBLE_EQ(bd.LoggingMs(), 1.0);
  EXPECT_DOUBLE_EQ(bd.LatchingMs(), 0.5);
  EXPECT_DOUBLE_EQ(bd.LockingMs(), 1.5);
  EXPECT_DOUBLE_EQ(bd.NetworkMs(), 2.0);
  EXPECT_DOUBLE_EQ(bd.DiskMs(), 3.0);
  // Other = cpu (1ms) + unattributed (10 - 9 = 1ms).
  EXPECT_DOUBLE_EQ(bd.OtherMs(), 2.0);
  EXPECT_DOUBLE_EQ(bd.TotalMs(), 10.0);
}

TEST(TimeBreakdown, MergeAndReset) {
  metrics::TimeBreakdown a, b;
  tx::Txn t;
  t.start_time = 0;
  t.now = 4000;
  t.disk_us = 4000;
  a.AddTxn(t);
  b.AddTxn(t);
  a.Add(b);
  EXPECT_EQ(a.queries(), 2);
  EXPECT_DOUBLE_EQ(a.DiskMs(), 4.0);
  a.Reset();
  EXPECT_EQ(a.queries(), 0);
}

TEST(TimeBreakdown, RowFormatting) {
  metrics::TimeBreakdown bd;
  const std::string header = metrics::TimeBreakdown::Header();
  EXPECT_NE(header.find("logging"), std::string::npos);
  EXPECT_NE(bd.ToRow("label").find("label"), std::string::npos);
}

}  // namespace
}  // namespace wattdb
