// Tests for the intra-node parallel data plane (src/lanes): Open-time
// validation of LanePolicy and the pluggable index kind, behavioral
// parity of the two RecordIndex implementations, lane-map invariants
// (round-robin spread, exactly-once visibility across an intra-node
// re-lane and across a cross-node move, survival across crash/redo),
// and the master's intra-node balancing tier firing before any
// cross-node heat move.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "api/db.h"
#include "index/record_index.h"
#include "lanes/lane_manager.h"
#include "storage/segment.h"

namespace wattdb {
namespace {

// ------------------------------------------------------------- Db fixtures

/// Lanes on, master loop off: routing/charging behavior only.
DbOptions LaneOptions(int lanes_per_node = 4) {
  lanes::LanePolicy lp;
  lp.enabled = true;
  lp.lanes_per_node = lanes_per_node;
  return DbOptions()
      .WithNodes(4)
      .WithActiveNodes(3)
      .WithoutTpccLoad()
      .WithLanePolicy(lp);
}

int CountEvents(Db& db, cluster::ControlEventType type) {
  int n = 0;
  for (const auto& e : db.control_events()) {
    if (e.type == type) ++n;
  }
  return n;
}

/// Simulated time of the first event of `type`, or -1 when absent.
SimTime FirstEventAt(Db& db, cluster::ControlEventType type) {
  for (const auto& e : db.control_events()) {
    if (e.type == type) return e.at;
  }
  return -1;
}

/// Distinct payload per key so a read that lands on the wrong record (or
/// a duplicate surviving a move) is visible as a value mismatch, not just
/// a miss.
std::vector<uint8_t> ValueFor(Key k) {
  return std::vector<uint8_t>(64, static_cast<uint8_t>(0x10 + (k % 200)));
}

/// Every written key in [lo, hi) readable exactly once with its own payload.
void ExpectAllReadable(Session& session, TableId table, Key lo, Key hi,
                       Key stride = 1) {
  for (Key k = lo; k < hi; k += stride) {
    StatusOr<storage::Record> rec = session.Get(table, k);
    ASSERT_TRUE(rec.ok()) << "key " << k << ": " << rec.status().ToString();
    EXPECT_EQ(rec->payload, ValueFor(k)) << "key " << k;
  }
}

// ------------------------------------------------------- Open validation

TEST(Lanes, OpenValidatesLanePolicy) {
  {
    DbOptions o = LaneOptions();
    o.cluster.lanes.lanes_per_node = 0;
    auto db = Db::Open(o);
    ASSERT_TRUE(db.status().IsInvalidArgument()) << db.status().ToString();
    EXPECT_NE(db.status().ToString().find("lanes_per_node"), std::string::npos);
  }
  {
    DbOptions o = LaneOptions();
    o.cluster.lanes.lane_trigger_ratio = 1.0;
    auto db = Db::Open(o);
    ASSERT_TRUE(db.status().IsInvalidArgument());
    EXPECT_NE(db.status().ToString().find("lane_trigger_ratio"),
              std::string::npos);
  }
  {
    DbOptions o = LaneOptions();
    o.cluster.lanes.max_relanes_per_round = 0;
    auto db = Db::Open(o);
    ASSERT_TRUE(db.status().IsInvalidArgument());
    EXPECT_NE(db.status().ToString().find("max_relanes_per_round"),
              std::string::npos);
  }
  {
    DbOptions o = LaneOptions();
    o.cluster.lanes.relane_cooldown = -1;
    auto db = Db::Open(o);
    ASSERT_TRUE(db.status().IsInvalidArgument());
    EXPECT_NE(db.status().ToString().find("relane_cooldown"),
              std::string::npos);
  }
  {
    // Misconfiguration is rejected even while the subsystem is off, per
    // the repo-wide policy convention.
    DbOptions o = LaneOptions();
    o.cluster.lanes.enabled = false;
    o.cluster.lanes.lanes_per_node = -3;
    EXPECT_TRUE(Db::Open(o).status().IsInvalidArgument());
  }
  {
    DbOptions o = LaneOptions().WithIndexKind(static_cast<index::IndexKind>(99));
    auto db = Db::Open(o);
    ASSERT_TRUE(db.status().IsInvalidArgument());
    EXPECT_NE(db.status().ToString().find("index_kind"), std::string::npos);
  }
  // A well-formed policy opens, with or without lanes.
  EXPECT_TRUE(Db::Open(LaneOptions()).ok());
  EXPECT_TRUE(
      Db::Open(LaneOptions().WithIndexKind(index::IndexKind::kHash)).ok());
}

// ------------------------------------------------------ RecordIndex parity

TEST(Lanes, RecordIndexImplementationsAgree) {
  for (index::IndexKind kind :
       {index::IndexKind::kBTree, index::IndexKind::kHash}) {
    SCOPED_TRACE(index::ToString(kind));
    std::unique_ptr<index::RecordIndex> idx = index::MakeRecordIndex(kind);
    ASSERT_NE(idx, nullptr);
    EXPECT_EQ(idx->kind(), kind);
    EXPECT_TRUE(idx->empty());

    // Insert out of order; duplicates overwrite and report "not new".
    const std::vector<Key> keys = {50, 10, 90, 30, 70, 20, 80};
    for (Key k : keys) {
      EXPECT_TRUE(
          idx->Insert(k, storage::RecordPos{static_cast<uint16_t>(k), 0}));
    }
    EXPECT_FALSE(idx->Insert(30, storage::RecordPos{300, 7}));
    EXPECT_EQ(idx->size(), keys.size());

    ASSERT_NE(idx->Find(30), nullptr);
    EXPECT_EQ(idx->Find(30)->page, 300) << "duplicate must overwrite";
    EXPECT_EQ(idx->Find(31), nullptr);
    EXPECT_TRUE(idx->Contains(90));

    // Scans visit [lo, hi) in ascending key order whatever the backing
    // structure — the hash index must sort.
    std::vector<Key> seen;
    const size_t visited =
        idx->Scan(20, 80, [&](Key k, const storage::RecordPos&) {
          seen.push_back(k);
          return true;
        });
    EXPECT_EQ(seen, (std::vector<Key>{20, 30, 50, 70}));
    EXPECT_EQ(visited, seen.size());
    // Early stop counts the entry that said stop.
    size_t stopped = idx->Scan(0, 1000, [&](Key, const storage::RecordPos&) {
      return false;
    });
    EXPECT_EQ(stopped, 1u);

    Key lb = 0;
    ASSERT_TRUE(idx->LowerBound(31, &lb));
    EXPECT_EQ(lb, 50);
    EXPECT_FALSE(idx->LowerBound(91, &lb));

    EXPECT_TRUE(idx->Erase(50));
    EXPECT_FALSE(idx->Erase(50));
    EXPECT_EQ(idx->Find(50), nullptr);
    EXPECT_EQ(idx->size(), keys.size() - 1);
    EXPECT_GT(idx->MemoryBytes(), 0u);
    EXPECT_TRUE(idx->CheckInvariants());
  }
  // Point probes are what the hash structure buys.
  EXPECT_LT(index::HashRecordIndex().probe_cost_factor(),
            index::BTreeRecordIndex().probe_cost_factor());
  EXPECT_EQ(index::MakeRecordIndex(static_cast<index::IndexKind>(99)), nullptr);
}

// ---------------------------------------------------- lane-map invariants

TEST(Lanes, SegmentsSpreadAcrossLanesAndRelaneKeepsDataExactlyOnce) {
  auto opened = Db::Open(LaneOptions(/*lanes_per_node=*/4));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 4);
  ASSERT_TRUE(table.ok());
  for (Key k = 512; k < 1024; k += 8) {
    ASSERT_TRUE(session.Put(*table, k, ValueFor(k)).ok());
  }
  ExpectAllReadable(session, *table, 512, 1024, 8);

  // Lazy round-robin assignment: every touched segment on node 1 sits in
  // a valid lane, and with 4 segments they spread over more than one.
  std::set<int> lanes_used;
  std::vector<storage::Segment*> node1_segs;
  for (storage::Segment* seg : db.cluster().segments().SegmentsOn(NodeId(1))) {
    if (seg->lane() == storage::Segment::kLaneUnassigned) continue;
    ASSERT_GE(seg->lane(), 0);
    ASSERT_LT(seg->lane(), 4);
    lanes_used.insert(seg->lane());
    node1_segs.push_back(seg);
  }
  ASSERT_GE(node1_segs.size(), 2u);
  EXPECT_GE(lanes_used.size(), 2u) << "round-robin should spread segments";

  // Intra-node re-lane is an in-memory remap: after stacking everything
  // onto lane 0, every key is still readable exactly once with its own
  // payload, and new writes land normally.
  const int64_t relanes_before = db.cluster().lanes().relanes();
  int64_t actually_moved = 0;
  for (storage::Segment* seg : node1_segs) {
    if (seg->lane() != 0) ++actually_moved;
    db.cluster().lanes().Relane(seg, 0);
    EXPECT_EQ(seg->lane(), 0);
  }
  EXPECT_GE(actually_moved, 1);
  EXPECT_EQ(db.cluster().lanes().relanes(), relanes_before + actually_moved);
  ExpectAllReadable(session, *table, 512, 1024, 8);
  ASSERT_TRUE(session.Put(*table, 513, ValueFor(513)).ok());
  EXPECT_TRUE(session.Get(*table, 513).ok());
}

TEST(Lanes, CrossNodeMoveResetsLaneAndKeepsDataExactlyOnce) {
  auto opened = Db::Open(LaneOptions(/*lanes_per_node=*/4));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());
  for (Key k = 512; k < 1024; k += 8) {
    ASSERT_TRUE(session.Put(*table, k, ValueFor(k)).ok());
  }
  ExpectAllReadable(session, *table, 512, 1024, 8);  // Assigns lanes.

  std::set<SegmentId> was_on_node1;
  for (storage::Segment* seg : db.cluster().segments().SegmentsOn(NodeId(1))) {
    was_on_node1.insert(seg->id());
  }
  ASSERT_FALSE(was_on_node1.empty());

  // Scale out onto node 3: some of node 1's laned segments move.
  ASSERT_TRUE(db.RebalanceAndWait({NodeId(3)}, 0.5, 600 * kUsPerSec).ok());
  std::vector<storage::Segment*> moved;
  for (storage::Segment* seg : db.cluster().segments().SegmentsOn(NodeId(3))) {
    if (was_on_node1.count(seg->id()) > 0) moved.push_back(seg);
  }

  // The lane shard is a per-node notion: Relocate drops the source node's
  // assignment, and the destination re-lanes on first access.
  for (storage::Segment* seg : moved) {
    EXPECT_EQ(seg->lane(), storage::Segment::kLaneUnassigned)
        << "segment " << seg->id().value() << " kept its source lane";
  }
  ExpectAllReadable(session, *table, 512, 1024, 8);
  for (storage::Segment* seg : moved) {
    EXPECT_GE(seg->lane(), 0) << "destination should assign on first access";
    EXPECT_LT(seg->lane(), 4);
  }
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());
}

TEST(Lanes, LaneMapSurvivesCrashAndRedo) {
  auto opened = Db::Open(LaneOptions(/*lanes_per_node=*/4));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());
  for (Key k = 512; k < 576; ++k) {
    ASSERT_TRUE(session.Put(*table, k, ValueFor(k)).ok());
  }
  ExpectAllReadable(session, *table, 512, 576);  // Assigns lanes.

  std::map<SegmentId, int> lane_before;
  for (storage::Segment* seg : db.cluster().segments().SegmentsOn(NodeId(1))) {
    if (seg->lane() != storage::Segment::kLaneUnassigned) {
      lane_before[seg->id()] = seg->lane();
    }
  }
  ASSERT_FALSE(lane_before.empty());

  // Crash/redo keeps the lane map: unlike a cross-node move, the segment
  // stays on its node, so its lane assignment is still meaningful.
  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());
  ASSERT_TRUE(db.RestartNodeAndWait(NodeId(1)).ok());
  for (const auto& [sid, lane] : lane_before) {
    storage::Segment* seg = db.cluster().segments().Get(sid);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->lane(), lane) << "segment " << sid.value();
  }
  ExpectAllReadable(session, *table, 512, 576);
}

// ------------------------------------------------- intra-node balance tier

TEST(Lanes, HotLaneIsRelanedBeforeAnyCrossNodeMove) {
  cluster::MasterPolicy mp;
  mp.check_period = kUsPerSec / 2;
  mp.stats_window = kUsPerSec / 2;
  mp.enable_scale_out = false;
  mp.enable_scale_in = false;
  mp.balance.enabled = true;
  mp.balance.trigger_ratio = 1.3;
  mp.balance.trigger_after = 2;
  mp.balance.cooldown = 4 * kUsPerSec;
  mp.balance.max_moves_per_round = 6;
  mp.balance.min_total_heat = 10.0;
  lanes::LanePolicy lp;
  lp.enabled = true;
  lp.lanes_per_node = 4;
  lp.balance_lanes = true;
  lp.lane_trigger_ratio = 1.3;
  lp.max_relanes_per_round = 4;
  lp.relane_cooldown = 2 * kUsPerSec;
  DbOptions options = DbOptions()
                          .WithNodes(4)
                          .WithActiveNodes(3)
                          .WithoutTpccLoad()
                          .WithLanePolicy(lp)
                          .WithMasterLoop(mp);
  auto opened = Db::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 4);
  ASSERT_TRUE(table.ok());
  for (Key k = 512; k < 1024; k += 4) {
    ASSERT_TRUE(session.Put(*table, k, ValueFor(k)).ok());
  }

  // Simulate drift: every segment of node 1 stacked onto lane 0, then all
  // traffic on that node — the classic hot-lane picture.
  for (storage::Segment* seg : db.cluster().segments().SegmentsOn(NodeId(1))) {
    db.cluster().lanes().Relane(seg, 0);
  }
  const SimTime t0 = db.Now();
  while (CountEvents(db, cluster::ControlEventType::kLaneRebalanced) == 0 &&
         db.Now() < t0 + 30 * kUsPerSec) {
    for (Key k = 512; k < 1024; k += 8) {
      ASSERT_TRUE(session.Get(*table, k).ok());
    }
    db.RunFor(kUsPerSec / 2);
  }

  // The cheap tier fired: imbalance -> per-segment re-lane -> round done.
  ASSERT_GE(CountEvents(db, cluster::ControlEventType::kLaneImbalance), 1);
  ASSERT_GE(CountEvents(db, cluster::ControlEventType::kSegmentRelaned), 1);
  ASSERT_GE(CountEvents(db, cluster::ControlEventType::kLaneRebalanced), 1);
  EXPECT_GE(db.master().lane_rebalances(), 1);
  EXPECT_GE(db.master().segments_relaned(), 1);
  const SimTime first_imbalance =
      FirstEventAt(db, cluster::ControlEventType::kLaneImbalance);
  const SimTime first_relane =
      FirstEventAt(db, cluster::ControlEventType::kSegmentRelaned);
  const SimTime first_round =
      FirstEventAt(db, cluster::ControlEventType::kLaneRebalanced);
  EXPECT_LE(first_imbalance, first_relane);
  EXPECT_LE(first_relane, first_round);

  // Re-laning preempted migration: no cross-node heat move was planned
  // before the first intra-node round completed.
  const SimTime first_move =
      FirstEventAt(db, cluster::ControlEventType::kHeatMovePlanned);
  EXPECT_TRUE(first_move == -1 || first_move > first_round)
      << "cross-node move planned at " << first_move
      << " before intra-node round at " << first_round;

  // The hot node's segments are spread over several lanes again, and the
  // data plane never hiccuped.
  std::set<int> lanes_used;
  for (storage::Segment* seg : db.cluster().segments().SegmentsOn(NodeId(1))) {
    if (seg->lane() != storage::Segment::kLaneUnassigned) {
      lanes_used.insert(seg->lane());
    }
  }
  EXPECT_GE(lanes_used.size(), 2u);
  for (Key k = 512; k < 1024; k += 4) {
    StatusOr<storage::Record> rec = session.Get(*table, k);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->payload, ValueFor(k));
  }
}

}  // namespace
}  // namespace wattdb
