// Tests for the warm-replica subsystem (src/replica): catalog replica
// routes and ownership-epoch fencing, the ReplicaManager lifecycle driven
// from the master's control ticks (bootstrap -> catch-up -> serving ->
// cold drop), read fan-out over owner + standbys, catch-up-and-flip
// failover on owner death, exactly-once apply across an owner crash at
// mid catch-up, and replica invalidation when a rebalance moves the
// source range.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "api/db.h"
#include "catalog/global_partition_table.h"
#include "replica/replica_manager.h"
#include "storage/segment.h"

namespace wattdb {
namespace {

// ------------------------------------------------------------ catalog unit

TEST(Catalog, ReplicaRoutesAndEpochFencing) {
  catalog::GlobalPartitionTable cat;
  catalog::TableSchema s;
  s.name = "t";
  s.columns = {{"v", catalog::ColumnType::kString, 64}};
  const TableId t = cat.CreateTable(std::move(s));
  catalog::Partition* owner = cat.CreatePartition(t, NodeId(1));
  ASSERT_TRUE(cat.AssignRange(t, {0, 100}, owner->id()).ok());
  const uint64_t owner_epoch = cat.EpochOf(t, 50);
  EXPECT_GT(owner_epoch, 0u) << "AssignRange stamps an ownership epoch";
  EXPECT_EQ(owner->route_epoch(), owner_epoch);

  // A replica route never shows up in Route() but is listed by ReplicasFor.
  catalog::Partition* standby = cat.CreatePartition(t, NodeId(2));
  standby->set_is_replica(true);
  ASSERT_TRUE(cat.AddReplicaRoute(t, {0, 100}, standby->id()).ok());
  EXPECT_TRUE(cat.AddReplicaRoute(t, {0, 100}, standby->id()).IsAlreadyExists())
      << "one partition holds at most one replica route";
  EXPECT_TRUE(cat.HasReplicas(t));
  EXPECT_EQ(cat.Route(t, 50)->primary, owner->id());
  ASSERT_EQ(cat.ReplicasFor(t, 50).size(), 1u);
  EXPECT_FALSE(cat.ReplicasFor(t, 50)[0].serving) << "not serving until set";
  ASSERT_TRUE(cat.SetReplicaServing(t, standby->id(), true).ok());
  EXPECT_TRUE(cat.ReplicasFor(t, 50)[0].serving);
  EXPECT_TRUE(cat.CheckInvariants());

  // Promotion flips ownership under a fresh epoch and retires the replica
  // route; the partition is a first-class owner afterwards.
  ASSERT_TRUE(cat.PromoteReplica(t, {0, 100}, standby->id()).ok());
  EXPECT_EQ(cat.Route(t, 50)->primary, standby->id());
  EXPECT_FALSE(standby->is_replica());
  EXPECT_FALSE(cat.HasReplicas(t));
  const uint64_t promoted_epoch = cat.EpochOf(t, 50);
  EXPECT_GT(promoted_epoch, owner_epoch);

  // The deposed owner coming back from redo must not steal the route: its
  // claim carries the epoch it last held the range at, which is stale now.
  const Status stale =
      cat.ReclaimRange(t, {0, 100}, owner->id(), owner_epoch);
  EXPECT_TRUE(stale.IsFailedPrecondition()) << stale.ToString();
  EXPECT_EQ(cat.Route(t, 50)->primary, standby->id());

  // An orphaned range (nothing routes it) is reclaimed like a fresh
  // assignment, whatever the claimed epoch.
  ASSERT_TRUE(cat.ReclaimRange(t, {100, 200}, owner->id(), owner_epoch).ok());
  EXPECT_EQ(cat.Route(t, 150)->primary, owner->id());
  EXPECT_TRUE(cat.CheckInvariants());
}

// ------------------------------------------------------------- Db fixtures

/// Master loop at 1s ticks with the replica policy on and elasticity off,
/// so ticks do exactly replica maintenance + failure detection.
DbOptions ReplicaOptions() {
  cluster::MasterPolicy mp;
  mp.check_period = kUsPerSec;
  mp.stats_window = kUsPerSec;
  mp.enable_scale_out = false;
  mp.enable_scale_in = false;
  mp.replica.enabled = true;
  mp.replica.replicas_per_segment = 1;
  mp.replica.heat_threshold = 20.0;
  mp.replica.max_replicated_segments = 2;
  mp.replica.max_lag_records = 64;
  mp.replica.drop_cold_after = 5 * kUsPerSec;
  return DbOptions()
      .WithNodes(4)
      .WithActiveNodes(3)
      .WithoutTpccLoad()
      .WithMasterLoop(mp);
}

int CountEvents(Db& db, cluster::ControlEventType type) {
  int n = 0;
  for (const auto& e : db.control_events()) {
    if (e.type == type) ++n;
  }
  return n;
}

/// Simulated time of the first event of `type`, or -1 when absent.
SimTime FirstEventAt(Db& db, cluster::ControlEventType type) {
  for (const auto& e : db.control_events()) {
    if (e.type == type) return e.at;
  }
  return -1;
}

NodeId OwnerOf(Db& db, TableId table, Key key) {
  auto e = db.cluster().catalog().Route(table, key);
  if (!e.has_value()) return NodeId::Invalid();
  catalog::Partition* p = db.cluster().catalog().GetPartition(e->primary);
  return p == nullptr ? NodeId::Invalid() : p->owner();
}

// ------------------------------------------------------- lifecycle + reads

TEST(Replica, HotSegmentGetsServingReplicaThenColdDrop) {
  auto opened = Db::Open(ReplicaOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  // Three active nodes -> [0,512) master, [512,1024) node 1,
  // [1024,1536) node 2; two segments per partition.
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());
  for (Key k = 520; k < 584; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xA0)).ok());
  }

  // Hammer one segment of node 1 across control ticks until its heat EWMA
  // crosses the threshold and the standby bootstraps and catches up.
  const SimTime t0 = db.Now();
  while (db.replicas().replicas_caught_up() == 0 &&
         db.Now() < t0 + 30 * kUsPerSec) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(session.Get(*table, 520 + (i % 64)).ok());
    }
    db.RunFor(kUsPerSec);
  }
  ASSERT_GE(db.replicas().replicas_created(), 1) << "no replica bootstrapped";
  ASSERT_GE(db.replicas().replicas_caught_up(), 1) << "no replica caught up";
  EXPECT_GE(CountEvents(db, cluster::ControlEventType::kReplicaCreated), 1);
  EXPECT_GE(CountEvents(db, cluster::ControlEventType::kReplicaCaughtUp), 1);
  EXPECT_GT(db.replicas().replication_bytes(), 0);
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());

  ASSERT_FALSE(db.replicas().replicas().empty());
  const auto rep = db.replicas().replicas().front();
  EXPECT_EQ(rep->src_node, NodeId(1));
  EXPECT_NE(rep->host, NodeId(1)) << "standby must live on another node";
  EXPECT_NE(rep->host, NodeId(0)) << "the master hosts no standbys";
  EXPECT_TRUE(rep->range.Contains(520));
  const auto routes = db.cluster().catalog().ReplicaRoutes(*table);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_TRUE(routes[0].serving);

  // Read fan-out: with one serving standby, round-robin sends about half
  // the reads to the replica segment — and every value is the committed one.
  storage::Segment* copy = db.cluster().segments().Get(rep->replica_segment);
  ASSERT_NE(copy, nullptr);
  const int64_t reads_before = copy->reads();
  for (int i = 0; i < 40; ++i) {
    StatusOr<storage::Record> rec = session.Get(*table, 520 + (i % 64));
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0xA0));
  }
  EXPECT_GT(copy->reads(), reads_before) << "no read ever hit the standby";

  // A write through the normal path lands on the owner and ships to the
  // replica on the next tick — reads stay consistent wherever they land.
  ASSERT_TRUE(session.Put(*table, 521, std::vector<uint8_t>(64, 0xB1)).ok());
  db.RunFor(2 * kUsPerSec);
  for (int i = 0; i < 4; ++i) {
    StatusOr<storage::Record> rec = session.Get(*table, 521);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0xB1));
  }

  // Stop the workload: the EWMA decays, the segment stays cold past the
  // hysteresis window, and the replica is dropped.
  db.RunFor(15 * kUsPerSec);
  EXPECT_GE(db.replicas().replicas_dropped(), 1);
  EXPECT_GE(CountEvents(db, cluster::ControlEventType::kReplicaDropped), 1);
  EXPECT_TRUE(db.replicas().replicas().empty());
  EXPECT_TRUE(db.cluster().catalog().ReplicaRoutes(*table).empty());
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());
  // Data plane unaffected by the drop.
  EXPECT_TRUE(session.Get(*table, 521).ok());
}

// ----------------------------------------------------------------- failover

TEST(Replica, OwnerDeathPromotesCaughtUpReplicaAndFencesRedo) {
  DbOptions options = ReplicaOptions();
  // Let the fault plan's restart drive recovery; the master only detects
  // and promotes.
  options.master.recovery.auto_heal = false;
  // Keep the replica alive while the owner is down (no workload then, so
  // the EWMA decays — the cold-drop clock must not beat the promotion).
  options.master.replica.drop_cold_after = 120 * kUsPerSec;
  auto opened = Db::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());
  for (Key k = 520; k < 584; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xA0)).ok());
  }
  ASSERT_TRUE(session.Put(*table, 900, std::vector<uint8_t>(64, 0xC0)).ok());

  const SimTime t0 = db.Now();
  while (db.replicas().replicas_caught_up() == 0 &&
         db.Now() < t0 + 30 * kUsPerSec) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(session.Get(*table, 520 + (i % 64)).ok());
    }
    db.RunFor(kUsPerSec);
  }
  ASSERT_GE(db.replicas().replicas_caught_up(), 1);
  ASSERT_FALSE(db.replicas().replicas().empty());
  const NodeId host = db.replicas().replicas().front()->host;

  // One more committed write the promotion's final catch-up must carry
  // over from the dead owner's surviving WAL.
  ASSERT_TRUE(session.Put(*table, 530, std::vector<uint8_t>(64, 0xD0)).ok());

  const SimTime crash_at = db.Now();
  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());

  // During the failover gap the serving standby keeps absorbing reads of
  // the replicated range; un-replicated ranges of the dead owner are out.
  StatusOr<storage::Record> during = session.Get(*table, 520);
  ASSERT_TRUE(during.ok()) << "standby should serve while the owner is down";
  EXPECT_EQ(during->payload, std::vector<uint8_t>(64, 0xA0));
  EXPECT_TRUE(session.Get(*table, 900).status().IsUnavailable());

  // Heartbeat detection -> promotion flips ownership to the standby.
  const SimTime wait0 = db.Now();
  while (CountEvents(db, cluster::ControlEventType::kReplicaPromoted) == 0 &&
         db.Now() < wait0 + 20 * kUsPerSec) {
    db.RunFor(kUsPerSec / 2);
  }
  ASSERT_GE(db.replicas().replicas_promoted(), 1) << "no promotion happened";
  const SimTime promoted_at =
      FirstEventAt(db, cluster::ControlEventType::kReplicaPromoted);
  ASSERT_GT(promoted_at, 0);
  // The gap is detection-dominated (2 heartbeat windows at 1s ticks) plus
  // the final tail — far under the multi-second full-redo restart path.
  EXPECT_LT(promoted_at - crash_at, 5 * kUsPerSec);
  EXPECT_EQ(OwnerOf(db, *table, 520), host);
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());

  // The new owner serves reads (including the final-tail write) and
  // accepts writes.
  StatusOr<storage::Record> carried = session.Get(*table, 530);
  ASSERT_TRUE(carried.ok());
  EXPECT_EQ(carried->payload, std::vector<uint8_t>(64, 0xD0));
  ASSERT_TRUE(session.Put(*table, 520, std::vector<uint8_t>(64, 0xE0)).ok());

  // The deposed owner restarts, replays its WAL — and is fenced off the
  // promoted range by the ownership epoch instead of resurrecting it.
  const StatusOr<fault::RecoveryReport> report =
      db.RestartNodeAndWait(NodeId(1));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->routes_superseded, 1)
      << "the promoted range must not be reclaimed by the deposed owner";
  EXPECT_EQ(OwnerOf(db, *table, 520), host) << "route stolen back after redo";
  StatusOr<storage::Record> after = session.Get(*table, 520);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->payload, std::vector<uint8_t>(64, 0xE0));
  // Un-replicated ranges of the restarted node recover normally.
  StatusOr<storage::Record> other = session.Get(*table, 900);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->payload, std::vector<uint8_t>(64, 0xC0));
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());
}

// ---------------------------------------------- exactly-once across crash

TEST(Replica, ExactlyOnceWhenOwnerCrashesMidCatchUp) {
  DbOptions options = ReplicaOptions();
  options.master.recovery.auto_heal = false;
  options.master.replica.drop_cold_after = 120 * kUsPerSec;
  // Crash the owner the moment the standby enters catch-up (progress
  // crosses 0.5 when the bootstrap stream completes; 0.75 while the log
  // tail is being applied), restart it 8s later. The standby's base copy
  // plus the dead owner's surviving WAL must reconstruct every committed
  // write exactly once.
  options.fault_plan =
      fault::FaultPlan().CrashAtReplicaProgress(NodeId(1), 0.6,
                                                8 * kUsPerSec);
  auto opened = Db::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());

  std::vector<Key> keys;
  for (Key k = 520; k < 584; ++k) keys.push_back(k);
  std::map<Key, uint8_t> expected;
  for (Key k : keys) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 1)).ok());
    expected[k] = 1;
  }

  // Keep writing rounds while the replica bootstraps, the crash fires, and
  // the promotion flips ownership. A put either commits (new expected
  // value) or fails Unavailable on the dead owner and changes nothing.
  uint8_t round = 1;
  const SimTime t0 = db.Now();
  while (CountEvents(db, cluster::ControlEventType::kReplicaPromoted) == 0 &&
         db.Now() < t0 + 60 * kUsPerSec) {
    ++round;
    for (Key k : keys) {
      const Status put =
          session.Put(*table, k, std::vector<uint8_t>(64, round));
      ASSERT_TRUE(put.ok() || put.IsUnavailable()) << put.ToString();
      if (put.ok()) expected[k] = round;
      // Reads drive the heat that makes the segment worth replicating.
      StatusOr<storage::Record> rec = session.Get(*table, k);
      ASSERT_TRUE(rec.ok() || rec.status().IsUnavailable());
    }
    db.RunFor(kUsPerSec / 2);
  }
  ASSERT_EQ(db.fault().crashes_injected(), 1)
      << "replica-progress trigger never fired";
  ASSERT_GE(db.replicas().replicas_promoted(), 1) << "no promotion happened";

  // A couple of post-promotion rounds must commit against the new owner.
  for (int extra = 0; extra < 2; ++extra) {
    ++round;
    for (Key k : keys) {
      ASSERT_TRUE(
          session.Put(*table, k, std::vector<uint8_t>(64, round)).ok())
          << "write refused after ownership flipped";
      expected[k] = round;
    }
    db.RunFor(kUsPerSec / 2);
  }

  // Let the fault plan's delayed restart run the deposed owner's redo.
  db.RunFor(15 * kUsPerSec);
  ASSERT_GE(db.recovery().recoveries(), 1) << "owner never restarted";
  EXPECT_GE(db.recovery().reports().back().routes_superseded, 1);

  // Exactly once: every key carries its last committed value, and a scan
  // of the range sees each key a single time (no resurrected duplicates).
  for (Key k : keys) {
    StatusOr<storage::Record> rec = session.Get(*table, k);
    ASSERT_TRUE(rec.ok()) << "key " << k << ": " << rec.status().ToString();
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, expected[k]))
        << "key " << k << " lost its last committed write";
  }
  std::map<Key, int> seen;
  const StatusOr<int64_t> visited =
      session.Scan(*table, {520, 584}, [&](const storage::Record& r) {
        ++seen[r.key];
        return true;
      });
  ASSERT_TRUE(visited.ok());
  EXPECT_EQ(*visited, static_cast<int64_t>(keys.size()));
  for (Key k : keys) {
    EXPECT_EQ(seen[k], 1) << "key " << k << " applied twice or lost";
  }
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());
}

// ------------------------------------------------------- moves invalidate

TEST(Replica, RebalanceMovingSourceRangeDropsTheReplica) {
  DbOptions options = ReplicaOptions();
  options.master.replica.drop_cold_after = 120 * kUsPerSec;
  auto opened = Db::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());
  for (Key k = 520; k < 584; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xA0)).ok());
  }
  const SimTime t0 = db.Now();
  while (db.replicas().replicas_caught_up() == 0 &&
         db.Now() < t0 + 30 * kUsPerSec) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(session.Get(*table, 520 + (i % 64)).ok());
    }
    db.RunFor(kUsPerSec);
  }
  ASSERT_FALSE(db.replicas().replicas().empty());

  // Move everything onto the standby node 3 (the planner must never pick
  // the replica partition itself as a move source). Once the source range
  // changes owners the stale standby is discarded, not chased.
  const StatusOr<SimTime> moved = db.RebalanceAndWait({NodeId(3)}, 1.0);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  db.RunFor(3 * kUsPerSec);  // One tick of replica validation.
  EXPECT_GE(db.replicas().replicas_dropped(), 1);
  EXPECT_GE(CountEvents(db, cluster::ControlEventType::kReplicaDropped), 1);
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());
  // Reads keep returning committed values wherever the range landed.
  for (Key k = 520; k < 584; ++k) {
    StatusOr<storage::Record> rec = session.Get(*table, k);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0xA0));
  }
}

// --------------------------------------------------- placement anti-affinity

TEST(Replica, PlanRebalanceAvoidsNodesHostingTheSegmentsReplica) {
  DbOptions options = ReplicaOptions();
  options.master.replica.drop_cold_after = 120 * kUsPerSec;
  auto opened = Db::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  // Three active nodes: [0,512) master, [512,1024) node 1, [1024,1536)
  // node 2; two segments per partition, so node 1 holds [512,768) and
  // [768,1024).
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1536, 2);
  ASSERT_TRUE(table.ok());
  for (Key k = 520; k < 584; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xA0)).ok());
  }
  const SimTime t0 = db.Now();
  while (db.replicas().replicas_caught_up() == 0 &&
         db.Now() < t0 + 30 * kUsPerSec) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(session.Get(*table, 520 + (i % 64)).ok());
    }
    db.RunFor(kUsPerSec);
  }
  ASSERT_FALSE(db.replicas().replicas().empty());
  // The only eligible standby host among 3 active nodes (not the master,
  // not the source) is node 2.
  const NodeId host = db.replicas().replicas().front()->host;
  ASSERT_EQ(host, NodeId(2));
  ASSERT_EQ(OwnerOf(db, *table, 520), NodeId(1));

  // Rebalance everything onto the replica's host: every segment may move
  // EXCEPT the replicated one — landing the authoritative copy next to its
  // own standby would silently void the fan-out. The guard drops that move
  // instead of redirecting it (the host is the only target).
  const StatusOr<SimTime> moved = db.RebalanceAndWait({host}, 1.0);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(OwnerOf(db, *table, 520), NodeId(1))
      << "replicated segment moved onto its replica's host";
  EXPECT_EQ(OwnerOf(db, *table, 800), host)
      << "anti-affinity must only protect the replicated range";
  // The standby survives (its source range never changed owners) and the
  // data plane is intact.
  db.RunFor(3 * kUsPerSec);
  EXPECT_EQ(db.replicas().replicas_dropped(), 0);
  EXPECT_FALSE(db.cluster().catalog().ReplicaRoutes(*table).empty());
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());
  for (Key k = 520; k < 584; ++k) {
    StatusOr<storage::Record> rec = session.Get(*table, k);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0xA0));
  }

  // Control: a target NOT hosting the replica is still a legal destination
  // for the same segment — the guard is replica-specific, not a blanket
  // pin.
  const StatusOr<SimTime> moved2 = db.RebalanceAndWait({NodeId(3)}, 1.0);
  ASSERT_TRUE(moved2.ok()) << moved2.status().ToString();
  EXPECT_EQ(OwnerOf(db, *table, 520), NodeId(3));
}

// ------------------------------------------------- promotion tie-breaking

TEST(Replica, PromotionTieBreakPicksColdestHost) {
  DbOptions options = ReplicaOptions().WithNodes(5).WithActiveNodes(4);
  options.master.recovery.auto_heal = false;
  options.master.replica.drop_cold_after = 120 * kUsPerSec;
  // Two standbys of the hot segment -> the failover has a real choice.
  options.master.replica.replicas_per_segment = 2;
  // One replicated segment only: the heating phase below makes another
  // segment hot on purpose and must not grow standbys of it.
  options.master.replica.max_replicated_segments = 1;
  auto opened = Db::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  // Four active nodes: [0,512) master, [512,1024) node 1, [1024,1536)
  // node 2, [1536,2048) node 3. Node 1 owns the range we replicate; nodes
  // 2 and 3 are the only eligible standby hosts.
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 2048, 2);
  ASSERT_TRUE(table.ok());
  for (Key k = 520; k < 584; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xA0)).ok());
  }
  // Seed the ranges of both candidate hosts for the heating phase below.
  for (Key k = 1040; k < 1104; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xB0)).ok());
  }
  for (Key k = 1560; k < 1624; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xB0)).ok());
  }

  const SimTime t0 = db.Now();
  while (db.replicas().replicas_caught_up() < 2 &&
         db.Now() < t0 + 40 * kUsPerSec) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(session.Get(*table, 520 + (i % 64)).ok());
    }
    db.RunFor(kUsPerSec);
  }
  ASSERT_GE(db.replicas().replicas_caught_up(), 2) << "need two standbys";
  const auto reps = db.replicas().replicas();
  ASSERT_EQ(reps.size(), 2u);
  ASSERT_NE(reps[0]->host, reps[1]->host);
  // The tie the heat rule breaks must be real: both standbys applied the
  // same source-log prefix (no writes since catch-up).
  ASSERT_EQ(reps[0]->applied_lsn, reps[1]->applied_lsn);

  // Make one host hot by hammering its *own* range; promotion freshness is
  // tied, so the colder of the two hosts must win the flip.
  const NodeId hot = reps[0]->host;
  const NodeId cold = reps[1]->host;
  const Key hot_base = hot == NodeId(2) ? 1040 : 1560;
  for (int tick = 0; tick < 4; ++tick) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(session.Get(*table, hot_base + (i % 64)).ok());
    }
    db.RunFor(kUsPerSec / 2);
  }
  const auto heats = db.monitor().NodeHeats();
  ASSERT_GT(heats.at(hot), heats.at(cold))
      << "heating phase failed to skew the monitor's node heat";

  const SimTime crash_at = db.Now();
  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());
  const SimTime wait0 = db.Now();
  while (CountEvents(db, cluster::ControlEventType::kReplicaPromoted) == 0 &&
         db.Now() < wait0 + 20 * kUsPerSec) {
    // Keep the hot host hot across detection ticks so the EWMA cannot
    // decay back into a coin flip before the promotion runs.
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(session.Get(*table, hot_base + (i % 64)).ok());
    }
    db.RunFor(kUsPerSec / 2);
  }
  ASSERT_GE(db.replicas().replicas_promoted(), 1) << "no promotion happened";
  EXPECT_GT(FirstEventAt(db, cluster::ControlEventType::kReplicaPromoted),
            crash_at);
  EXPECT_EQ(OwnerOf(db, *table, 520), cold)
      << "equally fresh standbys: the flip must land on the colder host";
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());
}

}  // namespace
}  // namespace wattdb
