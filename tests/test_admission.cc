// Tests for the admission-control subsystem (src/admission): the
// controller's depth caps and global-time pruning, policy validation at
// Db::Open, ResourceExhausted surfacing through Session/TxnHandle with the
// batch class shed first, Monitor queue-depth gauges, the KvWorkload
// open-loop accounting invariants under shedding + retries, and the
// master's sustained-overload signal feeding scale-out.

#include <gtest/gtest.h>

#include <vector>

#include "admission/admission.h"
#include "api/db.h"
#include "cluster/master.h"
#include "cluster/monitor.h"

namespace wattdb {
namespace {

int CountEvents(Db& db, cluster::ControlEventType type) {
  int n = 0;
  for (const auto& e : db.control_events()) {
    if (e.type == type) ++n;
  }
  return n;
}

int64_t TotalQueueDepth(Db& db) {
  int64_t total = 0;
  for (const auto& g : db.monitor().QueueDepths()) total += g.queued_ops;
  return total;
}

// -------------------------------------------------------- controller unit

TEST(AdmissionController, CapsAndGlobalTimePruning) {
  admission::AdmissionController ctl;
  admission::AdmissionPolicy ap;
  ap.enabled = true;
  ap.max_queue_ops = 4;
  ap.batch_share = 0.5;  // Batch cap: 2.
  ctl.set_policy(ap);
  const NodeId n1(1);
  const auto lat = admission::OpClass::kLatencySensitive;
  const auto batch = admission::OpClass::kBatch;

  // Three ops admitted at t=0, completing at 100/200/300.
  for (SimTime done : {100, 200, 300}) {
    ASSERT_TRUE(ctl.Admit(n1, lat, 0).ok());
    ctl.Complete(n1, done);
  }
  EXPECT_EQ(ctl.QueueDepth(n1, 0), 3);

  // A 2-op group busts the cap; a single op still fits.
  const Status refused = ctl.Admit(n1, lat, 0, 2);
  EXPECT_TRUE(refused.IsResourceExhausted()) << refused.ToString();
  ASSERT_TRUE(ctl.Admit(n1, lat, 0).ok());
  ctl.Complete(n1, 400);
  EXPECT_EQ(ctl.QueueDepth(n1, 0), 4);
  EXPECT_TRUE(ctl.Admit(n1, lat, 0).IsResourceExhausted());

  // Depth 4 > batch cap 2: the batch class is refused while a
  // latency-sensitive op would only be refused at the full cap.
  EXPECT_TRUE(ctl.Admit(n1, batch, 0).IsResourceExhausted());

  // The global clock passing completions drains the queue lazily.
  EXPECT_EQ(ctl.QueueDepth(n1, 250), 2);  // 300 and 400 still outstanding.
  EXPECT_TRUE(ctl.Admit(n1, batch, 250).IsResourceExhausted());  // 2 >= 2.
  ASSERT_TRUE(ctl.Admit(n1, lat, 250).ok());
  EXPECT_EQ(ctl.QueueDepth(n1, 400), 0);
  ASSERT_TRUE(ctl.Admit(n1, batch, 400).ok());

  // Other nodes are independent queues.
  EXPECT_EQ(ctl.QueueDepth(NodeId(2), 0), 0);
  EXPECT_TRUE(ctl.Admit(NodeId(2), lat, 0).ok());

  // Counters: one Admit call = one decision.
  EXPECT_EQ(ctl.admitted(lat), 6);
  EXPECT_EQ(ctl.admitted(batch), 1);
  EXPECT_EQ(ctl.shed(lat), 2);
  EXPECT_EQ(ctl.shed(batch), 2);
  EXPECT_EQ(ctl.shed_total(), 4);
}

TEST(AdmissionController, DisabledPolicyTracksButNeverRefuses) {
  admission::AdmissionController ctl;  // Default policy: disabled.
  const NodeId n1(1);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        ctl.Admit(n1, admission::OpClass::kLatencySensitive, 0).ok());
    ctl.Complete(n1, 1000 + i);
  }
  // Depth gauges stay live even though nothing is ever refused.
  EXPECT_EQ(ctl.QueueDepth(n1, 0), 1000);
  EXPECT_EQ(ctl.shed_total(), 0);
  EXPECT_EQ(ctl.QueueDepth(n1, 2000), 0);
}

// ------------------------------------------------------- Db::Open validation

TEST(Admission, OpenValidatesPolicyKnobs) {
  auto with = [](admission::AdmissionPolicy ap) {
    return Db::Open(DbOptions()
                        .WithNodes(2)
                        .WithActiveNodes(2)
                        .WithoutTpccLoad()
                        .WithAdmissionPolicy(ap))
        .status();
  };
  admission::AdmissionPolicy ap;
  EXPECT_TRUE(with(ap).ok()) << "defaults must validate";

  ap = {};
  ap.max_queue_ops = 0;
  EXPECT_TRUE(with(ap).IsInvalidArgument());
  ap = {};
  ap.batch_share = 0.0;
  EXPECT_TRUE(with(ap).IsInvalidArgument());
  ap = {};
  ap.batch_share = 1.5;
  EXPECT_TRUE(with(ap).IsInvalidArgument());
  ap = {};
  ap.overload_ratio = -0.1;
  EXPECT_TRUE(with(ap).IsInvalidArgument());
  ap = {};
  ap.overload_trigger_after = 0;
  EXPECT_TRUE(with(ap).IsInvalidArgument());
}

TEST(Admission, AddKvWorkloadValidatesRetryKnobs) {
  auto opened =
      Db::Open(DbOptions().WithNodes(2).WithActiveNodes(2).WithoutTpccLoad());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  workload::KvConfig cfg;
  cfg.shed_retries = -1;
  EXPECT_TRUE(db.AddKvWorkload(cfg).status().IsInvalidArgument());
  cfg = {};
  cfg.shed_retries = 2;
  cfg.retry_backoff = 0;
  EXPECT_TRUE(db.AddKvWorkload(cfg).status().IsInvalidArgument());
  cfg = {};
  cfg.slo_us = -5;
  EXPECT_TRUE(db.AddKvWorkload(cfg).status().IsInvalidArgument());
}

// ------------------------------------------------- surfacing through the API

TEST(Admission, ShedSurfacesAsResourceExhaustedAndDrains) {
  admission::AdmissionPolicy ap;
  ap.enabled = true;
  // An upsert of a fresh key is ONE admission (RoutedUpsert folds the
  // update probe and the insert into a single queued unit), so cap 1 lets
  // exactly one autocommit Put through.
  ap.max_queue_ops = 1;
  auto opened = Db::Open(DbOptions()
                             .WithNodes(2)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad()
                             .WithAdmissionPolicy(ap));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  // Two active nodes: [0,512) on the master, [512,1024) on node 1.
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1024);
  ASSERT_TRUE(table.ok());

  // The first Put is admitted; its completions sit in node 1's queue until
  // the *global* clock passes them, so an immediate second op is refused.
  ASSERT_TRUE(session.Put(*table, 600, std::vector<uint8_t>(64, 0x01)).ok());
  const Status refused =
      session.Put(*table, 601, std::vector<uint8_t>(64, 0x02));
  EXPECT_TRUE(refused.IsResourceExhausted()) << refused.ToString();
  EXPECT_GE(db.admission().shed_total(), 1);
  EXPECT_GT(TotalQueueDepth(db), 0) << "gauge must see the outstanding op";

  // Advancing the event loop past the completion drains the queue and the
  // same ops are admitted again.
  db.RunFor(kUsPerSec);
  EXPECT_EQ(TotalQueueDepth(db), 0);
  EXPECT_TRUE(session.Put(*table, 601, std::vector<uint8_t>(64, 0x02)).ok());
  db.RunFor(kUsPerSec);
  EXPECT_TRUE(session.Get(*table, 601).ok());
}

TEST(Admission, UpsertOfFreshKeyIsOneAdmissionUnit) {
  // Regression (PR 7 follow-up): Session::Put of a fresh key used to run
  // RoutedUpdate + RoutedInsert — two admission decisions (and two queued
  // ops of depth) for one logical upsert. RoutedUpsert must take exactly
  // one decision whether the key is fresh (update -> insert fall-through)
  // or already present (plain update).
  admission::AdmissionPolicy ap;
  ap.enabled = true;
  ap.max_queue_ops = 64;  // Roomy: counting decisions, not shedding.
  auto opened = Db::Open(DbOptions()
                             .WithNodes(2)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad()
                             .WithAdmissionPolicy(ap));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1024);
  ASSERT_TRUE(table.ok());
  const auto lat = admission::OpClass::kLatencySensitive;

  // Fresh key: update probe misses, insert fall-through — one admission.
  int64_t before = db.admission().admitted(lat);
  ASSERT_TRUE(session.Put(*table, 600, std::vector<uint8_t>(64, 0x01)).ok());
  EXPECT_EQ(db.admission().admitted(lat) - before, 1)
      << "fresh-key upsert must be a single admission unit";

  // Existing key: plain update — still one admission.
  db.RunFor(kUsPerSec);
  before = db.admission().admitted(lat);
  ASSERT_TRUE(session.Put(*table, 600, std::vector<uint8_t>(64, 0x02)).ok());
  EXPECT_EQ(db.admission().admitted(lat) - before, 1);
  EXPECT_EQ(db.admission().shed_total(), 0);

  // And the depth gauge agrees: one outstanding op right after the Put.
  db.RunFor(kUsPerSec);
  before = db.admission().admitted(lat);
  ASSERT_TRUE(session.Put(*table, 601, std::vector<uint8_t>(64, 0x03)).ok());
  EXPECT_EQ(db.admission().admitted(lat) - before, 1);
  EXPECT_LE(TotalQueueDepth(db), 1)
      << "a fresh-key upsert must occupy at most one queue slot";
}

TEST(Admission, BatchClassShedBeforeLatencySensitive) {
  admission::AdmissionPolicy ap;
  ap.enabled = true;
  ap.max_queue_ops = 2;
  ap.batch_share = 0.5;  // Batch cap: 1.
  auto opened = Db::Open(DbOptions()
                             .WithNodes(2)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad()
                             .WithAdmissionPolicy(ap));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("kv", 64, 1024);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session.Put(*table, 600, std::vector<uint8_t>(64, 0x01)).ok());
  db.RunFor(kUsPerSec);

  // One outstanding op on node 1 fills the batch slice but not the queue.
  ASSERT_TRUE(session.Put(*table, 600, std::vector<uint8_t>(64, 0x02)).ok());

  TxnHandle batch_txn = session.Begin(false, /*batch_priority=*/true);
  const StatusOr<storage::Record> batch_read = batch_txn.Get(*table, 600);
  EXPECT_TRUE(batch_read.status().IsResourceExhausted())
      << batch_read.status().ToString();
  batch_txn.Abort();

  TxnHandle lat_txn = session.Begin();
  const StatusOr<storage::Record> lat_read = lat_txn.Get(*table, 600);
  EXPECT_TRUE(lat_read.ok()) << lat_read.status().ToString();
  EXPECT_TRUE(lat_txn.Commit().ok());

  // Scans ride the batch class whatever the transaction's priority.
  TxnHandle scan_txn = session.Begin();
  const auto scanned = scan_txn.Scan(*table, {512, 640},
                                     [](const storage::Record&) {
                                       return true;
                                     });
  EXPECT_TRUE(scanned.status().IsResourceExhausted())
      << scanned.status().ToString();
  scan_txn.Abort();

  EXPECT_GE(db.admission().shed(admission::OpClass::kBatch), 2);
  EXPECT_EQ(db.admission().shed(admission::OpClass::kLatencySensitive), 0);
}

// ------------------------------------- open-loop accounting under shedding

TEST(Admission, KvWorkloadAccountingConsistentUnderShedding) {
  admission::AdmissionPolicy ap;
  ap.enabled = true;
  ap.max_queue_ops = 8;
  DbOptions options = DbOptions()
                          .WithNodes(2)
                          .WithActiveNodes(2)
                          .WithSeed(17)
                          .WithoutTpccLoad()
                          .WithAdmissionPolicy(ap);
  // Expensive ops so the offered load overruns the tiny cap immediately.
  options.cluster.costs.cpu_record_read_us = 300;
  options.cluster.costs.cpu_record_write_us = 600;
  auto opened = Db::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;

  workload::KvConfig cfg;
  cfg.arrival_qps = 1500;
  cfg.count_at_completion = true;
  cfg.read_ratio = 0.5;
  cfg.batch_size = 4;
  cfg.num_keys = 2048;
  cfg.value_bytes = 64;
  cfg.slo_us = 50 * kUsPerMs;
  cfg.shed_retries = 2;
  cfg.retry_backoff = 5 * kUsPerMs;
  cfg.seed = 17;
  auto kv = db.AddKvWorkload(cfg);
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();
  workload::KvWorkload& driver = **kv;

  driver.Start();
  db.RunFor(3 * kUsPerSec);
  EXPECT_GT(TotalQueueDepth(db), 0) << "saturated: gauges must show backlog";
  driver.Stop();
  // Drain: completion-time bookings and in-flight retry backoffs all fire.
  db.RunFor(2 * kUsPerSec);

  EXPECT_GT(driver.shed(), 0) << "load was sized to overrun the cap";
  EXPECT_GT(driver.committed(), 0);
  EXPECT_GT(driver.dropped(), 0) << "retries are finite; some txns drop";
  // Every issued arrival resolves exactly once: committed, aborted (shed
  // txns that exhausted their retries count here), or abandoned because
  // the workload stopped while a retry was waiting out its backoff.
  EXPECT_EQ(driver.issued(),
            driver.committed() + driver.aborted() + driver.retry_abandoned())
      << "issued=" << driver.issued() << " committed=" << driver.committed()
      << " aborted=" << driver.aborted()
      << " abandoned=" << driver.retry_abandoned();
  // A retry is a shed attempt that got rescheduled — never a fresh issue.
  EXPECT_LE(driver.retried(), driver.shed());
  EXPECT_GT(driver.retried(), 0);
  EXPECT_LE(driver.dropped(), driver.aborted());
  EXPECT_LE(driver.slo_met(), driver.committed());
  EXPECT_GT(driver.slo_met(), 0);
  // After the drain the admission queues are empty again.
  EXPECT_EQ(TotalQueueDepth(db), 0);
}

// ------------------------------------------------- overload -> master signal

TEST(Admission, SustainedOverloadTriggersScaleOutAndClears) {
  admission::AdmissionPolicy ap;
  ap.enabled = true;
  ap.max_queue_ops = 16;
  ap.overload_ratio = 0.5;
  ap.overload_trigger_after = 2;
  cluster::MasterPolicy mp;
  mp.check_period = kUsPerSec / 2;
  mp.stats_window = kUsPerSec;
  mp.trigger_after = 1;
  // Utilization can reach but never exceed 1.0, and the CPU trigger is
  // strict-greater: only queue pressure can scale out here.
  mp.cpu_upper = 1.0;
  mp.enable_scale_out = true;
  mp.enable_scale_in = false;
  mp.admission = ap;
  DbOptions options = DbOptions()
                          .WithNodes(3)
                          .WithActiveNodes(2)
                          .WithSeed(19)
                          .WithoutTpccLoad()
                          .WithMasterLoop(mp);
  options.cluster.costs.cpu_record_read_us = 300;
  options.cluster.costs.cpu_record_write_us = 600;
  auto opened = Db::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;

  workload::KvConfig cfg;
  cfg.arrival_qps = 1500;
  cfg.count_at_completion = true;
  cfg.read_ratio = 0.9;
  cfg.batch_size = 4;
  cfg.num_keys = 2048;
  cfg.value_bytes = 64;
  cfg.shed_retries = 1;
  cfg.retry_backoff = 5 * kUsPerMs;
  cfg.seed = 19;
  auto kv = db.AddKvWorkload(cfg);
  ASSERT_TRUE(kv.ok());
  workload::KvWorkload& driver = **kv;

  driver.Start();
  const SimTime t0 = db.Now();
  while (db.master().scale_out_events() == 0 &&
         db.Now() < t0 + 10 * kUsPerSec) {
    db.RunFor(kUsPerSec);
  }
  EXPECT_GE(db.master().overload_events(), 1);
  EXPECT_GE(CountEvents(db, cluster::ControlEventType::kOverloadDetected), 1);
  EXPECT_GE(db.master().scale_out_events(), 1)
      << "sustained queue overload must enlist the standby even though the "
         "CPU gauge never crossed its (unreachable) threshold";

  // Load gone -> queues drain -> the master announces the all-clear.
  driver.Stop();
  const SimTime t1 = db.Now();
  while (CountEvents(db, cluster::ControlEventType::kOverloadCleared) == 0 &&
         db.Now() < t1 + 10 * kUsPerSec) {
    db.RunFor(kUsPerSec);
  }
  EXPECT_GE(CountEvents(db, cluster::ControlEventType::kOverloadCleared), 1);
}

}  // namespace
}  // namespace wattdb
