// Tests for the volcano operator layer: correctness of results and the
// cost/shape properties behind Figs. 1 and 2.

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "exec/operators.h"

namespace wattdb::exec {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : cluster_(MakeConfig()) {
    table_ = cluster_.catalog().CreateTable(
        {TableId(), "t", {{"v", catalog::ColumnType::kString, 64}}});
    part_ = cluster_.catalog().CreatePartition(table_, NodeId(0));
    WATTDB_CHECK(
        cluster_.catalog().AssignRange(table_, {0, 100000}, part_->id()).ok());
    auto seg = cluster_.master()->AllocateSegment(0, part_, {0, 100000});
    WATTDB_CHECK(seg.ok());
    // 500 records with descending values (so sort has work to do).
    for (Key k = 0; k < 500; ++k) {
      WATTDB_CHECK(seg.value()
                       ->Insert(k, std::vector<uint8_t>(
                                       64, static_cast<uint8_t>(255 - k % 256)))
                       .ok());
    }
  }

  static cluster::ClusterConfig MakeConfig() {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.initially_active = 2;
    cfg.buffer.capacity_pages = 4000;
    return cfg;
  }

  std::unique_ptr<TableScanOp> Scan(size_t vec, KeyRange r = {0, 100000}) {
    return std::make_unique<TableScanOp>(part_, r, vec);
  }

  size_t Drain(Operator* root, SimTime* elapsed = nullptr) {
    tx::Txn* txn = cluster_.BeginTxn(true);
    ExecContext ctx{&cluster_, txn};
    const SimTime t0 = txn->now;
    const size_t n = DrainPlan(&ctx, root);
    if (elapsed != nullptr) *elapsed = txn->now - t0;
    cluster_.tm().Commit(txn);
    cluster_.tm().Release(txn->id);
    cluster_.RunUntil(cluster_.Now() + kUsPerSec);
    return n;
  }

  cluster::Cluster cluster_;
  TableId table_;
  catalog::Partition* part_;
};

TEST_F(ExecTest, ScanReturnsAllRecordsInOrder) {
  auto scan = Scan(64);
  tx::Txn* txn = cluster_.BeginTxn(true);
  ExecContext ctx{&cluster_, txn};
  scan->Open(&ctx);
  Batch b;
  Key prev = 0;
  size_t n = 0;
  bool first = true;
  while (scan->Next(&ctx, &b)) {
    for (const auto& r : b) {
      if (!first) {
        EXPECT_GT(r.key, prev);
      }
      prev = r.key;
      first = false;
      ++n;
    }
  }
  scan->Close(&ctx);
  EXPECT_EQ(n, 500u);
  cluster_.tm().Commit(txn);
  cluster_.tm().Release(txn->id);
}

TEST_F(ExecTest, ScanHonorsRange) {
  auto scan = Scan(64, {100, 200});
  EXPECT_EQ(Drain(scan.get()), 100u);
}

TEST_F(ExecTest, VectorSizeControlsBatching) {
  tx::Txn* txn = cluster_.BeginTxn(true);
  ExecContext ctx{&cluster_, txn};
  auto scan = Scan(7);
  scan->Open(&ctx);
  Batch b;
  ASSERT_TRUE(scan->Next(&ctx, &b));
  EXPECT_EQ(b.size(), 7u);
  scan->Close(&ctx);
  cluster_.tm().Commit(txn);
  cluster_.tm().Release(txn->id);
}

TEST_F(ExecTest, SortProducesSortedOutput) {
  SortOp sort(Scan(64), NodeId(0), 64);
  tx::Txn* txn = cluster_.BeginTxn(true);
  ExecContext ctx{&cluster_, txn};
  sort.Open(&ctx);
  Batch b;
  Key prev = 0;
  bool first = true;
  size_t n = 0;
  while (sort.Next(&ctx, &b)) {
    for (const auto& r : b) {
      if (!first) {
        EXPECT_GE(r.key, prev);
      }
      prev = r.key;
      first = false;
      ++n;
    }
  }
  sort.Close(&ctx);
  EXPECT_EQ(n, 500u);
  cluster_.tm().Commit(txn);
  cluster_.tm().Release(txn->id);
}

TEST_F(ExecTest, GroupAggregateCounts) {
  GroupAggregateOp agg(Scan(64), NodeId(0),
                       [](const storage::Record& r) { return r.key % 5; });
  tx::Txn* txn = cluster_.BeginTxn(true);
  ExecContext ctx{&cluster_, txn};
  agg.Open(&ctx);
  Batch b;
  size_t groups = 0;
  int64_t total = 0;
  while (agg.Next(&ctx, &b)) {
    for (const auto& r : b) {
      ++groups;
      int64_t count;
      memcpy(&count, r.payload.data(), 8);
      total += count;
    }
  }
  agg.Close(&ctx);
  EXPECT_EQ(groups, 5u);
  EXPECT_EQ(total, 500);
  cluster_.tm().Commit(txn);
  cluster_.tm().Release(txn->id);
}

TEST_F(ExecTest, ExchangeShipsAllRecords) {
  ExchangeOp ex(Scan(64), NodeId(1));
  EXPECT_EQ(Drain(&ex), 500u);
}

TEST_F(ExecTest, ExchangeLocalIsPassThrough) {
  ExchangeOp ex(Scan(64), NodeId(0));  // Producer == consumer.
  SimTime elapsed = 0;
  EXPECT_EQ(Drain(&ex, &elapsed), 500u);
  ExchangeOp remote(Scan(64), NodeId(1));
  SimTime remote_elapsed = 0;
  Drain(&remote, &remote_elapsed);
  EXPECT_LT(elapsed, remote_elapsed);
}

TEST_F(ExecTest, SingleRecordExchangeIsCatastrophic) {
  // The Fig. 1 cliff: per-record round trips vs vectorized shipping.
  ExchangeOp slow(Scan(1), NodeId(1));
  SimTime slow_elapsed = 0;
  Drain(&slow, &slow_elapsed);
  ExchangeOp fast(Scan(64), NodeId(1));
  SimTime fast_elapsed = 0;
  Drain(&fast, &fast_elapsed);
  EXPECT_GT(slow_elapsed, 5 * fast_elapsed);
}

TEST_F(ExecTest, BufferOpDeliversEverythingFaster) {
  ExchangeOp plain(Scan(64), NodeId(1));
  SimTime plain_elapsed = 0;
  EXPECT_EQ(Drain(&plain, &plain_elapsed), 500u);
  BufferOp buffered(Scan(64), NodeId(1), 3);
  SimTime buf_elapsed = 0;
  EXPECT_EQ(Drain(&buffered, &buf_elapsed), 500u);
  // Prefetch hides the fetch delay (§3.3).
  EXPECT_LT(buf_elapsed, plain_elapsed);
}

TEST_F(ExecTest, ProjectPreservesCardinality) {
  ProjectOp proj(Scan(32), NodeId(0));
  EXPECT_EQ(Drain(&proj), 500u);
}

TEST_F(ExecTest, ComposedRemotePlan) {
  // scan -> buffer-ship to node 1 -> sort on node 1: Fig. 2's offloaded plan.
  SortOp root(std::make_unique<BufferOp>(Scan(64), NodeId(1), 2), NodeId(1),
              64);
  EXPECT_EQ(Drain(&root), 500u);
}

TEST_F(ExecTest, OffloadingChargesRemoteCpu) {
  const SimTime t0 = cluster_.Now();
  SortOp root(std::make_unique<BufferOp>(Scan(64), NodeId(1), 2), NodeId(1),
              64);
  Drain(&root);
  // Node 1's CPU did the sorting work.
  EXPECT_GT(cluster_.node(NodeId(1))->hardware().cpu().BusyIn(
                t0, cluster_.Now() + 10 * kUsPerSec),
            0);
}

TEST_F(ExecTest, EmptyRangeYieldsNothing) {
  auto scan = Scan(64, {50000, 60000});
  EXPECT_EQ(Drain(scan.get()), 0u);
}

}  // namespace
}  // namespace wattdb::exec
