// Unit + property tests for the B+-tree (segment-local PK index).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "index/btree.h"

namespace wattdb::index {
namespace {

TEST(BTree, EmptyTree) {
  BTree<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Find(1), nullptr);
  EXPECT_FALSE(t.Erase(1));
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(BTree, InsertFind) {
  BTree<int> t;
  EXPECT_TRUE(t.Insert(10, 100));
  EXPECT_TRUE(t.Insert(5, 50));
  EXPECT_TRUE(t.Insert(20, 200));
  ASSERT_NE(t.Find(10), nullptr);
  EXPECT_EQ(*t.Find(10), 100);
  EXPECT_EQ(*t.Find(5), 50);
  EXPECT_EQ(t.Find(7), nullptr);
  EXPECT_EQ(t.size(), 3u);
}

TEST(BTree, InsertOverwrites) {
  BTree<int> t;
  EXPECT_TRUE(t.Insert(1, 10));
  EXPECT_FALSE(t.Insert(1, 20));  // Overwrite, not new.
  EXPECT_EQ(*t.Find(1), 20);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTree, EraseRemoves) {
  BTree<int> t;
  t.Insert(1, 10);
  t.Insert(2, 20);
  EXPECT_TRUE(t.Erase(1));
  EXPECT_EQ(t.Find(1), nullptr);
  EXPECT_NE(t.Find(2), nullptr);
  EXPECT_FALSE(t.Erase(1));
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTree, SplitsGrowHeight) {
  BTree<int, 8> t;
  for (Key k = 0; k < 1000; ++k) t.Insert(k, static_cast<int>(k));
  EXPECT_GT(t.height(), 2);
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_TRUE(t.CheckInvariants());
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_NE(t.Find(k), nullptr) << k;
  }
}

TEST(BTree, ScanInOrder) {
  BTree<int, 8> t;
  for (Key k = 100; k > 0; --k) t.Insert(k, static_cast<int>(k));
  std::vector<Key> seen;
  t.Scan(kMinKey, kMaxKey, [&](Key k, const int&) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(BTree, ScanRangeBounds) {
  BTree<int, 8> t;
  for (Key k = 0; k < 100; ++k) t.Insert(k, 1);
  std::vector<Key> seen;
  t.Scan(10, 20, [&](Key k, const int&) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 10u);
  EXPECT_EQ(seen.back(), 19u);
}

TEST(BTree, ScanEarlyStop) {
  BTree<int, 8> t;
  for (Key k = 0; k < 100; ++k) t.Insert(k, 1);
  size_t visited = t.Scan(0, 100, [&](Key k, const int&) { return k < 4; });
  EXPECT_EQ(visited, 5u);
}

TEST(BTree, LowerBound) {
  BTree<int> t;
  t.Insert(10, 1);
  t.Insert(20, 2);
  Key k = 0;
  int v = 0;
  ASSERT_TRUE(t.LowerBound(15, &k, &v));
  EXPECT_EQ(k, 20u);
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(t.LowerBound(10, &k));
  EXPECT_EQ(k, 10u);
  EXPECT_FALSE(t.LowerBound(21, &k));
}

TEST(BTree, ClearResets) {
  BTree<int> t;
  for (Key k = 0; k < 100; ++k) t.Insert(k, 1);
  t.Clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Find(5), nullptr);
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(BTree, MemoryBytesGrows) {
  BTree<int> t;
  const size_t empty = t.MemoryBytes();
  for (Key k = 0; k < 1000; ++k) t.Insert(k, 1);
  EXPECT_GT(t.MemoryBytes(), empty);
}

TEST(BTree, MaxKeyBoundary) {
  BTree<int> t;
  t.Insert(kMaxKey - 1, 1);
  t.Insert(kMinKey, 2);
  EXPECT_NE(t.Find(kMaxKey - 1), nullptr);
  EXPECT_NE(t.Find(kMinKey), nullptr);
  size_t n = t.Scan(kMinKey, kMaxKey, [](Key, const int&) { return true; });
  EXPECT_EQ(n, 2u);
}

// Property test: against a std::map reference model under mixed
// insert/erase/overwrite traffic, across fanouts and seeds.
struct PropParam {
  uint64_t seed;
  int ops;
};

class BTreePropertyTest : public ::testing::TestWithParam<PropParam> {};

TEST_P(BTreePropertyTest, MatchesReferenceModel) {
  BTree<int, 8> t;
  std::map<Key, int> model;
  Rng rng(GetParam().seed);
  for (int i = 0; i < GetParam().ops; ++i) {
    const Key k = static_cast<Key>(rng.UniformInt(0, 500));
    const int op = static_cast<int>(rng.UniformInt(0, 2));
    if (op <= 1) {
      const int v = static_cast<int>(rng.Next() & 0xFFFF);
      t.Insert(k, v);
      model[k] = v;
    } else {
      const bool erased = t.Erase(k);
      EXPECT_EQ(erased, model.erase(k) > 0);
    }
  }
  EXPECT_EQ(t.size(), model.size());
  ASSERT_TRUE(t.CheckInvariants());
  for (const auto& [k, v] : model) {
    const int* found = t.Find(k);
    ASSERT_NE(found, nullptr) << k;
    EXPECT_EQ(*found, v);
  }
  // Scan yields exactly the model's keys, in order.
  std::vector<std::pair<Key, int>> scanned;
  t.Scan(kMinKey, kMaxKey, [&](Key k, const int& v) {
    scanned.push_back({k, v});
    return true;
  });
  ASSERT_EQ(scanned.size(), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : scanned) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreePropertyTest,
    ::testing::Values(PropParam{1, 500}, PropParam{2, 2000},
                      PropParam{3, 5000}, PropParam{77, 10000},
                      PropParam{123456, 20000}));

// Sequential-insert property across fanouts: the TPC-C loader's
// monotonically increasing keys must stay balanced.
template <size_t F>
void SequentialInsertCheck() {
  BTree<int, F> t;
  for (Key k = 0; k < 5000; ++k) t.Insert(k, 1);
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_EQ(t.size(), 5000u);
}

TEST(BTree, SequentialInsertFanout4) { SequentialInsertCheck<4>(); }
TEST(BTree, SequentialInsertFanout16) { SequentialInsertCheck<16>(); }
TEST(BTree, SequentialInsertFanout64) { SequentialInsertCheck<64>(); }
TEST(BTree, SequentialInsertFanout256) { SequentialInsertCheck<256>(); }

}  // namespace
}  // namespace wattdb::index
