// Unit tests for the simulation substrate: virtual clock, deterministic
// event queue, and gap-filling resource timelines.

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/resource.h"

namespace wattdb::sim {
namespace {

TEST(Clock, StartsAtZeroAndAdvances) {
  Clock c;
  EXPECT_EQ(c.Now(), 0);
  c.AdvanceTo(100);
  EXPECT_EQ(c.Now(), 100);
}

TEST(EventQueue, RunsInTimeOrder) {
  Clock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  q.ScheduleAt(30, [&]() { order.push_back(3); });
  q.ScheduleAt(10, [&]() { order.push_back(1); });
  q.ScheduleAt(20, [&]() { order.push_back(2); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.Now(), 100);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  Clock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(50, [&order, i]() { order.push_back(i); });
  }
  q.RunUntil(50);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PastEventsClampToNow) {
  Clock clock;
  EventQueue q(&clock);
  clock.AdvanceTo(100);
  bool ran = false;
  q.ScheduleAt(10, [&]() { ran = true; });
  EXPECT_EQ(q.NextEventTime(), 100);
  q.RunUntil(100);
  EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  Clock clock;
  EventQueue q(&clock);
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) q.ScheduleAfter(10, recurse);
  };
  q.ScheduleAt(0, recurse);
  q.RunUntil(1000);
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, RunUntilStopsBeforeLaterEvents) {
  Clock clock;
  EventQueue q(&clock);
  bool late = false;
  q.ScheduleAt(200, [&]() { late = true; });
  q.RunUntil(100);
  EXPECT_FALSE(late);
  EXPECT_EQ(clock.Now(), 100);
  q.RunUntil(300);
  EXPECT_TRUE(late);
}

TEST(Resource, SimpleFcfs) {
  Resource r;
  EXPECT_EQ(r.Acquire(0, 10), 10);
  EXPECT_EQ(r.Acquire(0, 10), 20);   // Queues behind the first.
  EXPECT_EQ(r.Acquire(50, 10), 60);  // Idle gap before it.
}

TEST(Resource, GapFilling) {
  Resource r;
  // Occupy [100, 200).
  EXPECT_EQ(r.Acquire(100, 100), 200);
  // A later-issued request for an EARLIER time fits in the gap [0, 100).
  EXPECT_EQ(r.Acquire(0, 50), 50);
  // And one that does not fit before 100 goes after 200.
  EXPECT_EQ(r.Acquire(60, 80), 280);
}

TEST(Resource, GapExactFit) {
  Resource r;
  r.Acquire(0, 10);    // [0,10)
  r.Acquire(20, 10);   // [20,30)
  EXPECT_EQ(r.Acquire(10, 10), 20);  // Exactly fills [10,20).
  // Now fully busy [0,30): next goes at 30.
  EXPECT_EQ(r.Acquire(0, 5), 35);
}

TEST(Resource, ZeroServiceIsFree) {
  Resource r;
  r.Acquire(0, 100);
  EXPECT_EQ(r.Acquire(50, 0), 50);
}

TEST(Resource, BusyInWindows) {
  Resource r;
  r.Acquire(10, 20);  // [10, 30)
  r.Acquire(50, 10);  // [50, 60)
  EXPECT_EQ(r.BusyIn(0, 100), 30);
  EXPECT_EQ(r.BusyIn(0, 20), 10);
  EXPECT_EQ(r.BusyIn(25, 55), 10);
  EXPECT_DOUBLE_EQ(r.UtilizationIn(0, 100), 0.3);
}

TEST(Resource, TotalBusyAccumulates) {
  Resource r;
  r.Acquire(0, 5);
  r.Acquire(0, 7);
  EXPECT_EQ(r.TotalBusy(), 12);
}

TEST(Resource, PruneDropsOldIntervalsOnly) {
  Resource r;
  r.Acquire(0, 10);
  r.Acquire(100, 10);
  r.Prune(50);
  EXPECT_EQ(r.BusyIn(0, 50), 0);    // Forgotten.
  EXPECT_EQ(r.BusyIn(50, 200), 10); // Retained.
}

TEST(Resource, BacklogMeasuresFutureWork) {
  Resource r;
  r.Acquire(0, 100);
  EXPECT_EQ(r.Backlog(40), 60);
  EXPECT_EQ(r.Backlog(100), 0);
}

TEST(Resource, PeekDoesNotReserve) {
  Resource r;
  EXPECT_EQ(r.Peek(0, 10), 10);
  EXPECT_EQ(r.Peek(0, 10), 10);  // Still free.
  EXPECT_EQ(r.Acquire(0, 10), 10);
  EXPECT_EQ(r.Peek(0, 10), 20);
}

TEST(Resource, CoalescesAdjacentIntervals) {
  Resource r;
  for (int i = 0; i < 1000; ++i) r.Acquire(0, 1);
  // All contiguous: still a single busy block [0, 1000).
  EXPECT_EQ(r.BusyIn(0, 1000), 1000);
  EXPECT_EQ(r.Acquire(0, 1), 1001);
}

TEST(ResourcePool, ParallelismAcrossMembers) {
  ResourcePool pool("cpu", 2);
  EXPECT_EQ(pool.Acquire(0, 10), 10);  // Core 0.
  EXPECT_EQ(pool.Acquire(0, 10), 10);  // Core 1, in parallel.
  EXPECT_EQ(pool.Acquire(0, 10), 20);  // Queues on the earliest-free core.
}

TEST(ResourcePool, UtilizationAveragesMembers) {
  ResourcePool pool("cpu", 2);
  pool.Acquire(0, 100);  // One core busy [0, 100).
  EXPECT_DOUBLE_EQ(pool.UtilizationIn(0, 100), 0.5);
}

TEST(ResourcePool, PicksEarliestCompletion) {
  ResourcePool pool("cpu", 2);
  pool.Acquire(0, 100);           // Core 0 busy till 100.
  EXPECT_EQ(pool.Acquire(0, 5), 5);  // Lands on core 1.
}

// Property-style sweep: whatever the (deterministic pseudo-random) request
// pattern, intervals never overlap within one resource and total busy time
// is conserved.
class ResourcePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResourcePropertyTest, NoOverlapAndConservation) {
  Resource r;
  uint64_t x = GetParam();
  auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  SimTime total = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTime arrival = static_cast<SimTime>(next() % 10000);
    const SimTime service = static_cast<SimTime>(next() % 50 + 1);
    const SimTime done = r.Acquire(arrival, service);
    EXPECT_GE(done, arrival + service);
    total += service;
  }
  EXPECT_EQ(r.TotalBusy(), total);
  // Busy time within the full horizon equals the scheduled work.
  EXPECT_EQ(r.BusyIn(0, 1'000'000), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResourcePropertyTest,
                         ::testing::Values(1, 7, 42, 12345, 999983));

}  // namespace
}  // namespace wattdb::sim
