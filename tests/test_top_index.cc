// Unit tests for the partition top index (physiological mini-partitions).

#include <gtest/gtest.h>

#include "index/top_index.h"

namespace wattdb::index {
namespace {

TEST(TopIndex, AttachAndLookup) {
  TopIndex t;
  ASSERT_TRUE(t.Attach({0, 100}, SegmentId(1)).ok());
  ASSERT_TRUE(t.Attach({100, 200}, SegmentId(2)).ok());
  EXPECT_EQ(t.Lookup(0), SegmentId(1));
  EXPECT_EQ(t.Lookup(99), SegmentId(1));
  EXPECT_EQ(t.Lookup(100), SegmentId(2));
  EXPECT_EQ(t.Lookup(200), SegmentId::Invalid());
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(TopIndex, RejectsOverlap) {
  TopIndex t;
  ASSERT_TRUE(t.Attach({10, 20}, SegmentId(1)).ok());
  EXPECT_TRUE(t.Attach({15, 25}, SegmentId(2)).IsAlreadyExists());
  EXPECT_TRUE(t.Attach({0, 11}, SegmentId(3)).IsAlreadyExists());
  EXPECT_TRUE(t.Attach({10, 20}, SegmentId(4)).IsAlreadyExists());
  // Adjacent is fine.
  EXPECT_TRUE(t.Attach({20, 30}, SegmentId(5)).ok());
  EXPECT_TRUE(t.Attach({0, 10}, SegmentId(6)).ok());
}

TEST(TopIndex, RejectsEmptyRangeAndInvalidSegment) {
  TopIndex t;
  EXPECT_TRUE(t.Attach({5, 5}, SegmentId(1)).IsInvalidArgument());
  EXPECT_TRUE(t.Attach({5, 10}, SegmentId::Invalid()).IsInvalidArgument());
}

TEST(TopIndex, DetachFreesRange) {
  TopIndex t;
  ASSERT_TRUE(t.Attach({0, 100}, SegmentId(1)).ok());
  ASSERT_TRUE(t.Detach(SegmentId(1)).ok());
  EXPECT_EQ(t.Lookup(50), SegmentId::Invalid());
  EXPECT_TRUE(t.Detach(SegmentId(1)).IsNotFound());
  // Range reusable after detach (the physiological move dance).
  EXPECT_TRUE(t.Attach({0, 100}, SegmentId(2)).ok());
}

TEST(TopIndex, RangeOf) {
  TopIndex t;
  ASSERT_TRUE(t.Attach({7, 9}, SegmentId(3)).ok());
  EXPECT_EQ(t.RangeOf(SegmentId(3)), (KeyRange{7, 9}));
  EXPECT_TRUE(t.RangeOf(SegmentId(99)).Empty());
}

TEST(TopIndex, IntersectingFindsPartialOverlaps) {
  TopIndex t;
  ASSERT_TRUE(t.Attach({0, 10}, SegmentId(1)).ok());
  ASSERT_TRUE(t.Attach({10, 20}, SegmentId(2)).ok());
  ASSERT_TRUE(t.Attach({30, 40}, SegmentId(3)).ok());
  auto hits = t.Intersecting({5, 35});
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].segment, SegmentId(1));
  EXPECT_EQ(hits[1].segment, SegmentId(2));
  EXPECT_EQ(hits[2].segment, SegmentId(3));
  EXPECT_TRUE(t.Intersecting({20, 30}).empty());
  EXPECT_TRUE(t.Intersecting({40, 50}).empty());
  EXPECT_TRUE(t.Intersecting({5, 5}).empty());
}

TEST(TopIndex, AllAndHull) {
  TopIndex t;
  EXPECT_TRUE(t.Hull().Empty());
  ASSERT_TRUE(t.Attach({10, 20}, SegmentId(1)).ok());
  ASSERT_TRUE(t.Attach({40, 50}, SegmentId(2)).ok());
  EXPECT_EQ(t.All().size(), 2u);
  EXPECT_EQ(t.Hull(), (KeyRange{10, 50}));
}

TEST(TopIndex, ManySegmentsStaysConsistent) {
  TopIndex t;
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.Attach({i * 10, i * 10 + 10}, SegmentId(i + 1)).ok());
  }
  EXPECT_TRUE(t.CheckInvariants());
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(t.Lookup(i * 10 + 5), SegmentId(i + 1));
  }
  // Detach every other one; lookups route to the survivors only.
  for (uint32_t i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(t.Detach(SegmentId(i + 1)).ok());
  }
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_EQ(t.size(), 500u);
  EXPECT_EQ(t.Lookup(5), SegmentId::Invalid());
  EXPECT_EQ(t.Lookup(15), SegmentId(2));
}

}  // namespace
}  // namespace wattdb::index
