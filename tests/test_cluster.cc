// Tests for the cluster layer: power state machine, §3.1 power accounting,
// sampling, routing, and the master's elasticity controller + helpers.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "cluster/monitor.h"
#include "partition/physiological.h"
#include "workload/client.h"
#include "workload/tpcc_loader.h"

namespace wattdb::cluster {
namespace {

ClusterConfig SmallConfig(int nodes = 4, int active = 2) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.initially_active = active;
  cfg.buffer.capacity_pages = 1000;
  return cfg;
}

TEST(Cluster, InitialPowerStates) {
  Cluster c(SmallConfig(4, 2));
  EXPECT_TRUE(c.node(NodeId(0))->IsActive());
  EXPECT_TRUE(c.node(NodeId(1))->IsActive());
  EXPECT_FALSE(c.node(NodeId(2))->IsActive());
  EXPECT_EQ(c.ActiveNodeCount(), 2);
  EXPECT_TRUE(c.master()->IsMaster());
}

TEST(Cluster, PowerOnTakesBootTime) {
  Cluster c(SmallConfig());
  bool ready = false;
  ASSERT_TRUE(c.PowerOn(NodeId(2), [&]() { ready = true; }).ok());
  EXPECT_EQ(c.node(NodeId(2))->hardware().power_state(),
            hw::PowerState::kBooting);
  c.RunUntil(c.Now() + c.config().node_hw.boot_time_us / 2);
  EXPECT_FALSE(ready);
  c.RunUntil(c.Now() + c.config().node_hw.boot_time_us);
  EXPECT_TRUE(ready);
  EXPECT_TRUE(c.node(NodeId(2))->IsActive());
  // Power on while booting is rejected; already-active is a no-op success.
  EXPECT_TRUE(c.PowerOn(NodeId(2)).ok());
}

TEST(Cluster, PowerOffGuards) {
  Cluster c(SmallConfig());
  EXPECT_TRUE(c.PowerOff(NodeId(0)).IsInvalidArgument()) << "master stays";
  // A node with data may not power off (§4: data inaccessibility).
  c.segments().Create(NodeId(1), DiskId(3));
  EXPECT_TRUE(c.PowerOff(NodeId(1)).IsBusy());
}

TEST(Cluster, PowerOffErrorNamesTheResidentSegment) {
  Cluster c(SmallConfig());
  storage::Segment* seg = c.segments().Create(NodeId(1), DiskId(3));
  const Status s = c.PowerOff(NodeId(1));
  ASSERT_TRUE(s.IsBusy());
  // The message identifies the node and the segment that still holds bytes.
  EXPECT_NE(s.message().find("node 1"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("segment " + std::to_string(seg->id().value())),
            std::string::npos)
      << s.ToString();
}

TEST(Cluster, NodeLookupIsBoundsChecked) {
  Cluster c(SmallConfig(4, 2));
  EXPECT_NE(c.node(NodeId(3)), nullptr);
  EXPECT_EQ(c.node(NodeId(4)), nullptr) << "one past the end";
  EXPECT_EQ(c.node(NodeId(1000)), nullptr);
  EXPECT_EQ(c.node(NodeId::Invalid()), nullptr);
  EXPECT_TRUE(c.PowerOn(NodeId(99)).IsNotFound());
  EXPECT_TRUE(c.PowerOff(NodeId(99)).IsNotFound());
}

TEST(Cluster, WattsMatchPaperEnvelope) {
  Cluster c(SmallConfig(10, 1));
  // 1 active idle node + 9 standby + switch ~ 65 W.
  EXPECT_NEAR(c.WattsIn(0, kUsPerSec), 64.5, 1.0);
}

TEST(Cluster, SamplingAccumulatesEnergy) {
  Cluster c(SmallConfig(2, 2));
  metrics::TimeSeries series(kUsPerSec);
  c.StartSampling(&series);
  c.RunUntil(10 * kUsPerSec);
  // 2 active idle nodes + switch = 64 W for 10 s ~ 640 J.
  EXPECT_NEAR(c.energy().joules(), 640.0, 20.0);
  EXPECT_GE(series.buckets().size(), 9u);
}

TEST(Cluster, ChargeClientHopOnlyForRemote) {
  Cluster c(SmallConfig());
  tx::Txn* t = c.BeginTxn();
  c.ChargeClientHop(t, NodeId(0), 100, 100);
  EXPECT_EQ(t->net_us, 0);
  c.ChargeClientHop(t, NodeId(1), 100, 100);
  EXPECT_GT(t->net_us, 0);
  c.AbortTxn(t);
  c.tm().Release(t->id);
}

TEST(Monitor, SamplesUtilizationAndHeat) {
  Cluster c(SmallConfig());
  Monitor mon(&c);
  // Create some disk + cpu activity.
  storage::Segment* seg = c.segments().Create(NodeId(0), DiskId(1));
  ASSERT_TRUE(seg->Insert(1, std::vector<uint8_t>(100, 1)).ok());
  c.node(NodeId(0))->hardware().cpu().Acquire(0, 500000);
  c.FindDisk(DiskId(1))->AccessRandom(0, kPageSize);
  c.clock().AdvanceTo(kUsPerSec);
  auto stats = mon.Sample(kUsPerSec);
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_TRUE(stats[0].active);
  EXPECT_GT(stats[0].cpu, 0.2);
  EXPECT_FALSE(stats[2].active);
  auto heat = mon.SampleSegments();
  ASSERT_EQ(heat.size(), 1u);
  EXPECT_EQ(heat[0].writes, 1);
  // Deltas: second sample shows no new activity.
  auto heat2 = mon.SampleSegments();
  EXPECT_EQ(heat2[0].writes, 0);
}

TEST(Master, ScaleOutOnSustainedOverload) {
  Cluster c(SmallConfig(4, 2));
  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.05;
  load.home_nodes = {NodeId(0), NodeId(1)};
  workload::TpccDatabase db(&c, load);
  ASSERT_TRUE(db.Load().ok());

  partition::PhysiologicalPartitioning scheme(&c);
  MasterPolicy policy;
  policy.cpu_upper = 0.05;  // Absurdly low so any load trips it.
  policy.enable_scale_in = false;  // Keep the new node (tested separately).
  policy.check_period = 2 * kUsPerSec;
  policy.trigger_after = 2;
  Master master(&c, &scheme, policy);
  master.Start();

  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = 30;
  pool_cfg.think_time = 10 * kUsPerMs;
  workload::ClientPool pool(&db, pool_cfg);
  pool.Start();
  c.StartSampling(nullptr);
  c.RunUntil(120 * kUsPerSec);
  pool.Stop();

  EXPECT_GE(master.scale_out_events(), 1);
  EXPECT_GT(c.ActiveNodeCount(), 2);
  EXPECT_FALSE(c.catalog().PartitionsOwnedBy(NodeId(2)).empty());
}

TEST(Master, ScaleInWhenIdle) {
  Cluster c(SmallConfig(4, 2));
  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.05;
  load.home_nodes = {NodeId(0), NodeId(1)};
  workload::TpccDatabase db(&c, load);
  ASSERT_TRUE(db.Load().ok());

  partition::PhysiologicalPartitioning scheme(&c);
  MasterPolicy policy;
  policy.cpu_lower = 0.99;  // Everything counts as underutilized.
  policy.enable_scale_out = false;
  policy.check_period = 2 * kUsPerSec;
  Master master(&c, &scheme, policy);
  master.Start();
  c.StartSampling(nullptr);
  c.RunUntil(300 * kUsPerSec);

  EXPECT_GE(master.scale_in_events(), 1);
  EXPECT_EQ(c.ActiveNodeCount(), 1) << "node 1 drained and powered off";
  EXPECT_TRUE(c.segments().SegmentsOn(NodeId(1)).empty());
  EXPECT_TRUE(c.catalog().CheckInvariants());
}

TEST(Master, HelpersWireLogShippingAndRemoteBuffer) {
  Cluster c(SmallConfig(4, 2));
  partition::PhysiologicalPartitioning scheme(&c);
  Master master(&c, &scheme);
  ASSERT_TRUE(
      master.AttachHelpers({NodeId(2)}, {NodeId(0), NodeId(1)}, 1000).ok());
  c.RunUntil(c.Now() + 10 * kUsPerSec);  // Boot.
  EXPECT_TRUE(c.node(NodeId(2))->IsActive());
  EXPECT_TRUE(c.node(NodeId(0))->log().HasHelper());
  EXPECT_TRUE(c.node(NodeId(1))->buffer().HasRemoteTier());
  EXPECT_TRUE(master.AttachHelpers({NodeId(3)}, {NodeId(0)}, 10).IsBusy());
  ASSERT_TRUE(master.DetachHelpers().ok());
  EXPECT_FALSE(c.node(NodeId(0))->log().HasHelper());
  EXPECT_FALSE(c.node(NodeId(1))->buffer().HasRemoteTier());
  EXPECT_FALSE(c.node(NodeId(2))->IsActive());
}

TEST(Master, TriggerRebalanceBootsTargets) {
  Cluster c(SmallConfig(4, 2));
  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.05;
  load.home_nodes = {NodeId(0), NodeId(1)};
  workload::TpccDatabase db(&c, load);
  ASSERT_TRUE(db.Load().ok());
  partition::PhysiologicalPartitioning scheme(&c);
  Master master(&c, &scheme);
  bool done = false;
  ASSERT_TRUE(master
                  .TriggerRebalance({NodeId(2), NodeId(3)}, 0.5,
                                    [&]() { done = true; })
                  .ok());
  EXPECT_FALSE(c.node(NodeId(2))->IsActive()) << "boots asynchronously";
  c.RunUntil(c.Now() + 300 * kUsPerSec);
  EXPECT_TRUE(done);
  EXPECT_TRUE(c.node(NodeId(2))->IsActive());
}

}  // namespace
}  // namespace wattdb::cluster
