// Tests for the cluster layer: power state machine, §3.1 power accounting,
// sampling, routing, and the master's elasticity controller + helpers.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "cluster/monitor.h"
#include "partition/physiological.h"
#include "workload/client.h"
#include "workload/tpcc_loader.h"

namespace wattdb::cluster {
namespace {

ClusterConfig SmallConfig(int nodes = 4, int active = 2) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.initially_active = active;
  cfg.buffer.capacity_pages = 1000;
  return cfg;
}

TEST(Cluster, InitialPowerStates) {
  Cluster c(SmallConfig(4, 2));
  EXPECT_TRUE(c.node(NodeId(0))->IsActive());
  EXPECT_TRUE(c.node(NodeId(1))->IsActive());
  EXPECT_FALSE(c.node(NodeId(2))->IsActive());
  EXPECT_EQ(c.ActiveNodeCount(), 2);
  EXPECT_TRUE(c.master()->IsMaster());
}

TEST(Cluster, PowerOnTakesBootTime) {
  Cluster c(SmallConfig());
  bool ready = false;
  ASSERT_TRUE(c.PowerOn(NodeId(2), [&]() { ready = true; }).ok());
  EXPECT_EQ(c.node(NodeId(2))->hardware().power_state(),
            hw::PowerState::kBooting);
  c.RunUntil(c.Now() + c.config().node_hw.boot_time_us / 2);
  EXPECT_FALSE(ready);
  c.RunUntil(c.Now() + c.config().node_hw.boot_time_us);
  EXPECT_TRUE(ready);
  EXPECT_TRUE(c.node(NodeId(2))->IsActive());
  // Power on while booting is rejected; already-active is a no-op success.
  EXPECT_TRUE(c.PowerOn(NodeId(2)).ok());
}

TEST(Cluster, PowerOffGuards) {
  Cluster c(SmallConfig());
  EXPECT_TRUE(c.PowerOff(NodeId(0)).IsInvalidArgument()) << "master stays";
  // A node with data may not power off (§4: data inaccessibility).
  c.segments().Create(NodeId(1), DiskId(3));
  EXPECT_TRUE(c.PowerOff(NodeId(1)).IsBusy());
}

TEST(Cluster, PowerOffErrorNamesTheResidentSegment) {
  Cluster c(SmallConfig());
  storage::Segment* seg = c.segments().Create(NodeId(1), DiskId(3));
  const Status s = c.PowerOff(NodeId(1));
  ASSERT_TRUE(s.IsBusy());
  // The message identifies the node and the segment that still holds bytes.
  EXPECT_NE(s.message().find("node 1"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("segment " + std::to_string(seg->id().value())),
            std::string::npos)
      << s.ToString();
}

TEST(Cluster, NodeLookupIsBoundsChecked) {
  Cluster c(SmallConfig(4, 2));
  EXPECT_NE(c.node(NodeId(3)), nullptr);
  EXPECT_EQ(c.node(NodeId(4)), nullptr) << "one past the end";
  EXPECT_EQ(c.node(NodeId(1000)), nullptr);
  EXPECT_EQ(c.node(NodeId::Invalid()), nullptr);
  EXPECT_TRUE(c.PowerOn(NodeId(99)).IsNotFound());
  EXPECT_TRUE(c.PowerOff(NodeId(99)).IsNotFound());
}

TEST(Cluster, WattsMatchPaperEnvelope) {
  Cluster c(SmallConfig(10, 1));
  // 1 active idle node + 9 standby + switch ~ 65 W.
  EXPECT_NEAR(c.WattsIn(0, kUsPerSec), 64.5, 1.0);
}

TEST(Cluster, SamplingAccumulatesEnergy) {
  Cluster c(SmallConfig(2, 2));
  metrics::TimeSeries series(kUsPerSec);
  c.StartSampling(&series);
  c.RunUntil(10 * kUsPerSec);
  // 2 active idle nodes + switch = 64 W for 10 s ~ 640 J.
  EXPECT_NEAR(c.energy().joules(), 640.0, 20.0);
  EXPECT_GE(series.buckets().size(), 9u);
}

TEST(Cluster, ChargeClientHopOnlyForRemote) {
  Cluster c(SmallConfig());
  tx::Txn* t = c.BeginTxn();
  c.ChargeClientHop(t, NodeId(0), 100, 100);
  EXPECT_EQ(t->net_us, 0);
  c.ChargeClientHop(t, NodeId(1), 100, 100);
  EXPECT_GT(t->net_us, 0);
  c.AbortTxn(t);
  c.tm().Release(t->id);
}

TEST(Monitor, SamplesUtilizationAndHeat) {
  Cluster c(SmallConfig());
  Monitor mon(&c);
  // Create some disk + cpu activity.
  storage::Segment* seg = c.segments().Create(NodeId(0), DiskId(1));
  ASSERT_TRUE(seg->Insert(1, std::vector<uint8_t>(100, 1)).ok());
  c.node(NodeId(0))->hardware().cpu().Acquire(0, 500000);
  c.FindDisk(DiskId(1))->AccessRandom(0, kPageSize);
  c.clock().AdvanceTo(kUsPerSec);
  auto stats = mon.Sample(kUsPerSec);
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_TRUE(stats[0].active);
  EXPECT_GT(stats[0].cpu, 0.2);
  EXPECT_FALSE(stats[2].active);
  auto heat = mon.SampleSegments();
  ASSERT_EQ(heat.size(), 1u);
  EXPECT_EQ(heat[0].writes, 1);
  // Deltas: second sample shows no new activity.
  auto heat2 = mon.SampleSegments();
  EXPECT_EQ(heat2[0].writes, 0);
}

TEST(Monitor, SampleSegmentsHandlesCreateAndDropMidWindow) {
  Cluster c(SmallConfig());
  Monitor mon(&c);
  storage::Segment* a = c.segments().Create(NodeId(0), DiskId(1));
  ASSERT_TRUE(a->Insert(1, std::vector<uint8_t>(16, 1)).ok());
  auto h1 = mon.SampleSegments();
  ASSERT_EQ(h1.size(), 1u);
  EXPECT_EQ(h1[0].writes, 1);
  // A segment created after the previous sample reports its full counters
  // (there is no earlier snapshot to subtract).
  storage::Segment* b = c.segments().Create(NodeId(1), DiskId(3));
  ASSERT_TRUE(b->Insert(2, std::vector<uint8_t>(16, 2)).ok());
  ASSERT_TRUE(b->Insert(3, std::vector<uint8_t>(16, 3)).ok());
  auto h2 = mon.SampleSegments();
  ASSERT_EQ(h2.size(), 2u);
  EXPECT_EQ(h2[0].segment, a->id());
  EXPECT_EQ(h2[0].writes, 0) << "idle since the last sample";
  EXPECT_EQ(h2[1].segment, b->id());
  EXPECT_EQ(h2[1].writes, 2) << "created mid-window: full count";
  // A dropped segment simply vanishes from the next sample.
  ASSERT_TRUE(c.segments().Drop(b->id()).ok());
  ASSERT_TRUE(a->Read(1).ok());
  auto h3 = mon.SampleSegments();
  ASSERT_EQ(h3.size(), 1u);
  EXPECT_EQ(h3[0].segment, a->id());
  EXPECT_EQ(h3[0].reads, 1);
}

TEST(Monitor, HeatEwmaTracksRatesAndDecays) {
  Cluster c(SmallConfig());
  Monitor mon(&c);
  storage::Segment* seg = c.segments().Create(NodeId(0), DiskId(1));
  ASSERT_TRUE(seg->Insert(1, std::vector<uint8_t>(16, 1)).ok());
  for (int i = 0; i < 99; ++i) ASSERT_TRUE(seg->Read(1).ok());
  // First observation initializes the EWMA at the raw rate: 100 ops / 1 s.
  mon.UpdateHeat(kUsPerSec, 0.5);
  EXPECT_NEAR(mon.HeatOf(seg->id()), 100.0, 1e-9);
  // An idle window halves it (alpha = 0.5)...
  mon.UpdateHeat(kUsPerSec, 0.5);
  EXPECT_NEAR(mon.HeatOf(seg->id()), 50.0, 1e-9);
  // ...and a 10 ops/s window blends: 0.5*10 + 0.5*50.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(seg->Read(1).ok());
  mon.UpdateHeat(kUsPerSec, 0.5);
  EXPECT_NEAR(mon.HeatOf(seg->id()), 30.0, 1e-9);
  // The node roll-up attributes heat to the storage node.
  auto nodes = mon.NodeHeats();
  EXPECT_NEAR(nodes[NodeId(0)], 30.0, 1e-9);
  // A dropped segment decays away and is eventually forgotten entirely.
  const SegmentId dropped = seg->id();
  ASSERT_TRUE(c.segments().Drop(dropped).ok());
  for (int i = 0; i < 30; ++i) mon.UpdateHeat(kUsPerSec, 0.5);
  EXPECT_EQ(mon.HeatOf(dropped), 0.0);
  EXPECT_TRUE(mon.SegmentHeats().empty());
}

/// Rig for the heat balancer: three active nodes, a table whose only data
/// partition lives on node 1 with two segments — one hammered, one warm.
/// Synthetic heat is driven by touching the segments directly between
/// control ticks, so the trigger math is exact.
class HeatBalanceTest : public ::testing::Test {
 protected:
  HeatBalanceTest() : cluster_(SmallConfig(3, 3)) {
    table_ = cluster_.catalog().CreateTable(
        {TableId(), "kv", {{"v", catalog::ColumnType::kString, 64}}});
    part_ = cluster_.catalog().CreatePartition(table_, NodeId(1));
    WATTDB_CHECK(
        cluster_.catalog().AssignRange(table_, {0, 1000}, part_->id()).ok());
    auto a = cluster_.node(NodeId(1))->AllocateSegment(0, part_, {0, 500});
    auto b = cluster_.node(NodeId(1))->AllocateSegment(0, part_, {500, 1000});
    WATTDB_CHECK(a.ok() && b.ok());
    hot_seg_ = a.value();
    warm_seg_ = b.value();
    WATTDB_CHECK(hot_seg_->Insert(10, std::vector<uint8_t>(64, 1)).ok());
    WATTDB_CHECK(warm_seg_->Insert(600, std::vector<uint8_t>(64, 2)).ok());
  }

  static MasterPolicy BalancingPolicy() {
    MasterPolicy policy;
    policy.check_period = kUsPerSec;
    policy.stats_window = kUsPerSec;
    policy.enable_scale_out = false;
    policy.enable_scale_in = false;
    policy.balance.enabled = true;
    policy.balance.trigger_ratio = 1.5;
    policy.balance.ewma_alpha = 0.5;
    policy.balance.trigger_after = 2;
    policy.balance.cooldown = 5 * kUsPerSec;
    policy.balance.max_moves_per_round = 4;
    policy.balance.min_total_heat = 10.0;
    return policy;
  }

  void Heat(storage::Segment* seg, int reads, Key key) {
    for (int i = 0; i < reads; ++i) ASSERT_TRUE(seg->Read(key).ok());
  }

  /// Owner node of the routing entry covering `key`.
  NodeId OwnerOf(Key key) {
    auto e = cluster_.catalog().Route(table_, key);
    if (!e.has_value()) return NodeId::Invalid();
    catalog::Partition* p = cluster_.catalog().GetPartition(e->primary);
    return p == nullptr ? NodeId::Invalid() : p->owner();
  }

  int CountEvents(const Master& m, ControlEventType type) {
    int n = 0;
    for (const auto& e : m.control_events()) {
      if (e.type == type) ++n;
    }
    return n;
  }

  Cluster cluster_;
  TableId table_;
  catalog::Partition* part_ = nullptr;
  storage::Segment* hot_seg_ = nullptr;
  storage::Segment* warm_seg_ = nullptr;
};

TEST_F(HeatBalanceTest, TriggersAfterHysteresisAndMovesHottestSegment) {
  partition::PhysiologicalPartitioning scheme(&cluster_);
  Master master(&cluster_, &scheme, BalancingPolicy());
  master.Start();

  // Tick 1: imbalance visible (node 1 carries all heat) but hysteresis
  // (trigger_after = 2) must hold the first violation back.
  Heat(hot_seg_, 300, 10);
  Heat(warm_seg_, 30, 600);
  cluster_.RunUntil(kUsPerSec + kUsPerMs);
  EXPECT_EQ(master.heat_rebalances(), 0) << "one violation is not a trend";
  EXPECT_EQ(CountEvents(master, ControlEventType::kHeatImbalance), 0);

  // Tick 2: second consecutive violation → trigger, plan, move.
  Heat(hot_seg_, 300, 10);
  Heat(warm_seg_, 30, 600);
  cluster_.RunUntil(2 * kUsPerSec + kUsPerMs);
  EXPECT_EQ(master.heat_rebalances(), 1);
  EXPECT_EQ(CountEvents(master, ControlEventType::kHeatImbalance), 1);
  EXPECT_GE(CountEvents(master, ControlEventType::kHeatMovePlanned), 1);

  // Let the move stream and install, then verify the hottest segment's
  // range changed owners while the warm one stayed put.
  cluster_.RunUntil(cluster_.Now() + 20 * kUsPerSec);
  EXPECT_EQ(master.heat_moves_completed(), 1);
  EXPECT_EQ(CountEvents(master, ControlEventType::kHeatRebalanced), 1);
  EXPECT_NE(OwnerOf(10), NodeId(1)) << "hot range moved off the hot node";
  EXPECT_EQ(OwnerOf(600), NodeId(1)) << "warm range stayed";
  EXPECT_NE(hot_seg_->storage_node(), NodeId(1));
  EXPECT_TRUE(cluster_.catalog().CheckInvariants());
}

TEST_F(HeatBalanceTest, NeverPingPongsAHotSegment) {
  partition::PhysiologicalPartitioning scheme(&cluster_);
  Master master(&cluster_, &scheme, BalancingPolicy());
  master.Start();

  // Keep hammering the same segment across many ticks: it moves off node 1
  // once, then — although its new home is now the hottest node — it must
  // not bounce back (cooldown, and moving the dominant segment would just
  // relocate the hotspot, which the planner rejects).
  for (int tick = 0; tick < 18; ++tick) {
    Heat(hot_seg_, 300, 10);
    Heat(warm_seg_, 30, 600);
    cluster_.RunUntil((tick + 1) * kUsPerSec + kUsPerMs);
  }
  EXPECT_EQ(master.heat_moves_completed(), 1) << "exactly one productive move";
  const NodeId home = hot_seg_->storage_node();
  EXPECT_NE(home, NodeId(1));
  // No abandoned moves, no thrash: planned == completed.
  EXPECT_EQ(master.heat_moves_planned(), master.heat_moves_completed());
  EXPECT_TRUE(cluster_.catalog().CheckInvariants());
}

TEST(Master, ScaleOutOnSustainedOverload) {
  Cluster c(SmallConfig(4, 2));
  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.05;
  load.home_nodes = {NodeId(0), NodeId(1)};
  workload::TpccDatabase db(&c, load);
  ASSERT_TRUE(db.Load().ok());

  partition::PhysiologicalPartitioning scheme(&c);
  MasterPolicy policy;
  policy.cpu_upper = 0.05;  // Absurdly low so any load trips it.
  policy.enable_scale_in = false;  // Keep the new node (tested separately).
  policy.check_period = 2 * kUsPerSec;
  policy.trigger_after = 2;
  Master master(&c, &scheme, policy);
  master.Start();

  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = 30;
  pool_cfg.think_time = 10 * kUsPerMs;
  workload::ClientPool pool(&db, pool_cfg);
  pool.Start();
  c.StartSampling(nullptr);
  c.RunUntil(120 * kUsPerSec);
  pool.Stop();

  EXPECT_GE(master.scale_out_events(), 1);
  EXPECT_GT(c.ActiveNodeCount(), 2);
  EXPECT_FALSE(c.catalog().PartitionsOwnedBy(NodeId(2)).empty());
}

TEST(Master, ScaleInWhenIdle) {
  Cluster c(SmallConfig(4, 2));
  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.05;
  load.home_nodes = {NodeId(0), NodeId(1)};
  workload::TpccDatabase db(&c, load);
  ASSERT_TRUE(db.Load().ok());

  partition::PhysiologicalPartitioning scheme(&c);
  MasterPolicy policy;
  policy.cpu_lower = 0.99;  // Everything counts as underutilized.
  policy.enable_scale_out = false;
  policy.check_period = 2 * kUsPerSec;
  Master master(&c, &scheme, policy);
  master.Start();
  c.StartSampling(nullptr);
  c.RunUntil(300 * kUsPerSec);

  EXPECT_GE(master.scale_in_events(), 1);
  EXPECT_EQ(c.ActiveNodeCount(), 1) << "node 1 drained and powered off";
  EXPECT_TRUE(c.segments().SegmentsOn(NodeId(1)).empty());
  EXPECT_TRUE(c.catalog().CheckInvariants());
}

TEST(Master, HelpersWireLogShippingAndRemoteBuffer) {
  Cluster c(SmallConfig(4, 2));
  partition::PhysiologicalPartitioning scheme(&c);
  Master master(&c, &scheme);
  ASSERT_TRUE(
      master.AttachHelpers({NodeId(2)}, {NodeId(0), NodeId(1)}, 1000).ok());
  c.RunUntil(c.Now() + 10 * kUsPerSec);  // Boot.
  EXPECT_TRUE(c.node(NodeId(2))->IsActive());
  EXPECT_TRUE(c.node(NodeId(0))->log().HasHelper());
  EXPECT_TRUE(c.node(NodeId(1))->buffer().HasRemoteTier());
  EXPECT_TRUE(
      master.AttachHelpers({NodeId(3)}, {NodeId(0)}, 10).IsFailedPrecondition());
  ASSERT_TRUE(master.DetachHelpers().ok());
  EXPECT_FALSE(c.node(NodeId(0))->log().HasHelper());
  EXPECT_FALSE(c.node(NodeId(1))->buffer().HasRemoteTier());
  EXPECT_FALSE(c.node(NodeId(2))->IsActive());
}

TEST(Master, TriggerRebalanceBootsTargets) {
  Cluster c(SmallConfig(4, 2));
  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.05;
  load.home_nodes = {NodeId(0), NodeId(1)};
  workload::TpccDatabase db(&c, load);
  ASSERT_TRUE(db.Load().ok());
  partition::PhysiologicalPartitioning scheme(&c);
  Master master(&c, &scheme);
  bool done = false;
  ASSERT_TRUE(master
                  .TriggerRebalance({NodeId(2), NodeId(3)}, 0.5,
                                    [&]() { done = true; })
                  .ok());
  EXPECT_FALSE(c.node(NodeId(2))->IsActive()) << "boots asynchronously";
  c.RunUntil(c.Now() + 300 * kUsPerSec);
  EXPECT_TRUE(done);
  EXPECT_TRUE(c.node(NodeId(2))->IsActive());
}

}  // namespace
}  // namespace wattdb::cluster
